// Tests of distributed campaign dispatch (runner/dispatch.hpp) and its
// TCP transport (runner/transport.hpp): the control-frame codec, the
// mixed-magic TransportParser, a mutation fuzzer over both stream
// parsers, the --hosts/--serve/--lease CLI surface, the journal
// write-failure latch, and end-to-end localhost campaigns against real
// host-agent processes that get SIGKILLed mid-trial.
//
// This binary self-execs as its own host agents: main() checks for
// --serve and, when present, rebuilds the trial list from --dt-* flags
// and enters run_host_agent with a scenario-driven run_trial override
// instead of running gtest. Scenarios key on the SEED (trial i has seed
// base + i) because agent-side leases run without tracing, so
// config.trace_trial is not stamped.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/dispatch.hpp"
#include "runner/journal.hpp"
#include "runner/supervisor.hpp"
#include "runner/transport.hpp"
#include "runner/worker.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"

namespace fourbit::runner {
namespace {

// ---- shared scenario machinery (used by tests AND agent mode) ---------

/// Deterministic fake result, a pure function of the seed: agents and
/// the in-process reference compute identical bytes.
ExperimentResult synthetic_result(std::uint64_t seed) {
  ExperimentResult r;
  r.cost = 1.0 + static_cast<double>(seed) * 0.25;
  r.delivery_ratio = 1.0 / (1.0 + static_cast<double>(seed % 7));
  r.mean_depth = static_cast<double>(seed % 5);
  r.per_node_delivery = {0.5, static_cast<double>(seed) * 0.01};
  r.generated = seed * 3;
  r.delivered = seed * 2;
  r.data_tx = seed + 11;
  r.parent_changes = seed % 3;
  r.final_tree.depths = {1, 2, static_cast<int>(seed % 4)};
  r.final_tree.mean_depth = 1.5;
  return r;
}

/// Trial list both ends rebuild independently: seeds base, base+1, ...
std::vector<ExperimentConfig> scenario_trials(std::size_t n,
                                              std::uint64_t base) {
  std::vector<ExperimentConfig> trials(n);
  for (std::size_t i = 0; i < n; ++i) trials[i].seed = base + i;
  return trials;
}

struct Scenario {
  std::string kind = "clean";
  std::size_t arg = 0;  // "segv@3": trial index; "slow@25": ms per trial
};

Scenario parse_scenario(const std::string& text) {
  Scenario s;
  const auto at = text.find('@');
  if (at == std::string::npos) {
    s.kind = text;
  } else {
    s.kind = text.substr(0, at);
    s.arg = static_cast<std::size_t>(
        std::strtoul(text.c_str() + at + 1, nullptr, 10));
  }
  return s;
}

/// The agent-side trial executor: misbehaves per the scenario, keyed on
/// seed - base (the trial index), else returns the synthetic result.
std::function<ExperimentResult(const ExperimentConfig&)> scenario_run_trial(
    Scenario scenario, std::uint64_t base) {
  return [scenario, base](const ExperimentConfig& config) {
    const std::size_t index =
        static_cast<std::size_t>(config.seed - base);
    if (scenario.kind == "slow") {
      std::this_thread::sleep_for(std::chrono::milliseconds(scenario.arg));
    } else if (index == scenario.arg) {
      if (scenario.kind == "segv") {
        // In-process agent: this takes the whole agent down — the
        // cross-machine analogue of a worker SIGSEGV.
        ::raise(SIGSEGV);
      } else if (scenario.kind == "fail") {
        throw std::runtime_error("scenario soft failure");
      }
    }
    return synthetic_result(config.seed);
  };
}

std::function<ExperimentResult(const ExperimentConfig&)> clean_run_trial() {
  return [](const ExperimentConfig& config) {
    return synthetic_result(config.seed);
  };
}

}  // namespace

/// Agent-mode entry (called from main when --serve is present): rebuild
/// the trial list from the --dt-* flags and serve leases forever.
[[noreturn]] void dt_agent_main(int argc, char** argv, CampaignCli cli) {
  const Scenario scenario = parse_scenario(
      consume_flag(argc, argv, "--dt-scenario").value_or("clean"));
  const std::size_t n = static_cast<std::size_t>(
      consume_uint_flag(argc, argv, "--dt-trials").value_or(0));
  const std::uint64_t base =
      consume_uint_flag(argc, argv, "--dt-seed").value_or(1);
  auto options = cli.supervisor_options();
  options.run_trial = scenario_run_trial(scenario, base);
  run_host_agent(scenario_trials(n, base), cli, std::move(options));
}

namespace {

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_depth, b.mean_depth);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  EXPECT_EQ(a.final_tree.depths, b.final_tree.depths);
  EXPECT_EQ(a.final_tree.mean_depth, b.final_tree.mean_depth);
}

std::string temp_stem(const char* name) {
  return (std::filesystem::path{::testing::TempDir()} /
          (std::string{"fourbit_"} + name + "_" +
           std::to_string(::getpid()) + ".journal"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The single-process reference the distributed report and journal must
/// match byte for byte.
CampaignReport reference_report(std::size_t n, std::uint64_t base,
                                const std::string& journal = "") {
  SupervisorOptions options;
  options.threads = 1;
  options.run_trial = clean_run_trial();
  options.journal_path = journal;
  return run_supervised(scenario_trials(n, base), options);
}

/// One self-exec'd host-agent process: --serve 0 plus the scenario
/// flags, with stderr on a pipe so the announced ephemeral port can be
/// parsed. SIGKILLed (idempotently) on destruction.
class SpawnedAgent {
 public:
  SpawnedAgent(const std::string& scenario, std::size_t n,
               std::uint64_t base) {
    int err_pipe[2] = {-1, -1};
    if (::pipe(err_pipe) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(err_pipe[1], 2);
      ::close(err_pipe[0]);
      ::close(err_pipe[1]);
      std::vector<std::string> args = {
          "/proc/self/exe", "--serve",    "0",
          "--dt-scenario",  scenario,     "--dt-trials",
          std::to_string(n), "--dt-seed", std::to_string(base),
          "--threads",      "1"};
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv("/proc/self/exe", argv.data());
      ::_exit(127);
    }
    ::close(err_pipe[1]);
    err_fd_ = err_pipe[0];
    if (pid_ > 0) port_ = read_announced_port();
  }

  ~SpawnedAgent() {
    kill_now();
    if (err_fd_ >= 0) ::close(err_fd_);
  }

  void kill_now() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  [[nodiscard]] std::uint16_t read_announced_port() {
    std::string text;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{err_fd_, POLLIN, 0};
      if (poll_retry(&pfd, 1, 100) <= 0) continue;
      char buf[512];
      const ssize_t n = ::read(err_fd_, buf, sizeof buf);
      if (n <= 0) break;
      text.append(buf, static_cast<std::size_t>(n));
      const auto pos = text.find("listening on port ");
      if (pos == std::string::npos) continue;
      const auto eol = text.find('\n', pos);
      if (eol == std::string::npos) continue;
      return static_cast<std::uint16_t>(
          std::strtoul(text.c_str() + pos + 18, nullptr, 10));
    }
    return 0;
  }

  pid_t pid_ = -1;
  int err_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Dispatch options tuned for fast tests: snappy reconnect backoff and
/// two strikes before a host is retired.
DispatchOptions dt_options(const std::vector<std::uint16_t>& ports,
                           const std::string& journal = "") {
  DispatchOptions options;
  options.supervisor.threads = 1;
  options.supervisor.run_trial = clean_run_trial();
  options.supervisor.journal_path = journal;
  for (const auto port : ports) {
    options.hosts.push_back(HostEndpoint{"127.0.0.1", port});
  }
  options.heartbeat_timeout_ms = 5000;
  options.connect_timeout_ms = 2000;
  options.reconnect_backoff = Backoff{10, 50, 0.0};
  options.max_host_failures = 2;
  return options;
}

/// An ephemeral port nothing listens on (bound once, then released).
std::uint16_t dead_port() {
  auto listener = listen_on(0);
  if (!listener) return 1;  // port 1: virtually always refused
  const std::uint16_t port = listener->port;
  ::close(listener->fd);
  return port;
}

// ---- control-frame codec and the demultiplexing parser ----------------

TEST(ControlCodecTest, RoundTripsEveryKind) {
  // kStatus carries an encoded binary snapshot payload, so its text
  // must survive embedded NULs and high bytes.
  std::string binary_status;
  binary_status.push_back('\0');
  binary_status.push_back('\xff');
  binary_status += "status-bytes";
  for (const auto kind : {ControlKind::kLeaseGrant, ControlKind::kLeaseComplete,
                          ControlKind::kShutdown, ControlKind::kStatus}) {
    ControlMessage m;
    m.kind = kind;
    m.lease = 0xABCD1234u;
    if (kind == ControlKind::kLeaseGrant) {
      m.text = "0-4,9,12-13";
    } else if (kind == ControlKind::kStatus) {
      m.text = binary_status;
    }
    const auto frame = encode_control_message(m);
    TransportParser parser;
    parser.feed(frame.data(), frame.size());
    const auto out = parser.next();
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->type, TransportFrame::Type::kControl);
    EXPECT_EQ(out->control.kind, m.kind);
    EXPECT_EQ(out->control.lease, m.lease);
    EXPECT_EQ(out->control.text, m.text);
    EXPECT_FALSE(parser.corrupt());
  }
}

TEST(TransportParserTest, DemultiplexesMixedMagicsInOrder) {
  WorkerRecord status;
  status.kind = WorkerRecordKind::kTrialStart;
  status.worker = 3;
  status.trial_index = 7;
  status.seed = 107;
  JournalEntry entry{7, 107, synthetic_result(107)};
  ControlMessage control;
  control.kind = ControlKind::kLeaseComplete;
  control.lease = 42;

  std::vector<std::uint8_t> stream;
  for (const auto& frame :
       {encode_worker_record(status), encode_journal_record(entry),
        encode_control_message(control)}) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  // Every chunking of the same bytes must yield the same three frames.
  for (const std::size_t chunk : {1ul, 2ul, 3ul, 5ul, 64ul, stream.size()}) {
    TransportParser parser;
    std::vector<TransportFrame> frames;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      parser.feed(stream.data() + at, std::min(chunk, stream.size() - at));
      while (auto f = parser.next()) frames.push_back(std::move(*f));
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    ASSERT_EQ(frames[0].type, TransportFrame::Type::kStatus);
    EXPECT_EQ(frames[0].record.trial_index, 7u);
    ASSERT_EQ(frames[1].type, TransportFrame::Type::kResult);
    EXPECT_EQ(frames[1].entry.seed, 107u);
    expect_identical(frames[1].entry.result, synthetic_result(107));
    ASSERT_EQ(frames[2].type, TransportFrame::Type::kControl);
    EXPECT_EQ(frames[2].control.lease, 42u);
    EXPECT_FALSE(parser.corrupt());
  }
}

TEST(TransportParserTest, UnknownMagicLatchesCorrupt) {
  const std::uint8_t junk[8] = {0x12, 0x34, 0, 0, 0, 0, 0, 0};
  TransportParser parser;
  parser.feed(junk, sizeof junk);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

TEST(TransportParserTest, BadCrcLatchesCorrupt) {
  ControlMessage m;
  m.kind = ControlKind::kLeaseGrant;
  m.text = "0-3";
  auto frame = encode_control_message(m);
  frame.back() ^= 0xFF;  // CRC trailer
  TransportParser parser;
  parser.feed(frame.data(), frame.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

TEST(TransportParserTest, DuplicatedFrameIsTwoValidFrames) {
  // Duplication is NOT a framing error — dedup is the coordinator's
  // (index, seed) last-wins rule, not the parser's.
  JournalEntry entry{4, 104, synthetic_result(104)};
  const auto frame = encode_journal_record(entry);
  std::vector<std::uint8_t> stream{frame.begin(), frame.end()};
  stream.insert(stream.end(), frame.begin(), frame.end());
  TransportParser parser;
  parser.feed(stream.data(), stream.size());
  EXPECT_TRUE(parser.next().has_value());
  EXPECT_TRUE(parser.next().has_value());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.corrupt());
}

TEST(TransportParserTest, OversizedLengthLatchesCorruptInsteadOfBuffering) {
  // magic "FT" + a length field claiming 256 MiB: the parser must
  // reject it up front, not wait for 256 MiB that will never come.
  const std::uint8_t header[6] = {0x54, 0x46, 0, 0, 0, 0x10};
  TransportParser parser;
  parser.feed(header, sizeof header);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

// ---- mutation fuzz over both stream parsers ---------------------------

namespace {

struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

std::vector<std::uint8_t> fuzz_corpus() {
  std::vector<std::uint8_t> stream;
  const auto add = [&](const std::vector<std::uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  for (std::uint32_t i = 0; i < 4; ++i) {
    WorkerRecord start;
    start.kind = WorkerRecordKind::kTrialStart;
    start.trial_index = i;
    start.seed = 100 + i;
    add(encode_worker_record(start));
    WorkerRecord done;
    done.kind = WorkerRecordKind::kTrialDone;
    done.trial_index = i;
    done.seed = 100 + i;
    done.attempt = 1;
    add(encode_worker_record(done));
    add(encode_journal_record({i, 100 + i, synthetic_result(100 + i)}));
  }
  ControlMessage complete;
  complete.kind = ControlKind::kLeaseComplete;
  complete.lease = 1;
  add(encode_control_message(complete));
  return stream;
}

/// Feeds `stream` to both parsers in random chunks. The only demands:
/// no crash, no OOB (ASan's job), no unbounded frame production, and a
/// latched parser stays latched.
void exercise_parsers(const std::vector<std::uint8_t>& stream, Lcg& rng) {
  TransportParser transport;
  WorkerPipeParser pipe;
  std::size_t frames = 0;
  std::size_t at = 0;
  while (at < stream.size()) {
    const std::size_t chunk =
        std::min(stream.size() - at, rng.below(97) + 1);
    transport.feed(stream.data() + at, chunk);
    pipe.feed(stream.data() + at, chunk);
    at += chunk;
    bool was_corrupt = transport.corrupt();
    while (auto f = transport.next()) {
      ASSERT_FALSE(was_corrupt) << "frame produced after corrupt latch";
      ++frames;
    }
    was_corrupt = pipe.corrupt();
    while (auto r = pipe.next()) {
      ASSERT_FALSE(was_corrupt) << "record produced after corrupt latch";
      ++frames;
    }
    ASSERT_LE(frames, 4 * stream.size());
  }
}

}  // namespace

TEST(TransportFuzzTest, MutatedStreamsNeverCrashOrOverread) {
  const std::vector<std::uint8_t> corpus = fuzz_corpus();
  Lcg rng{0x46574654464AULL};

  {
    // The pristine corpus must parse fully on the transport side.
    TransportParser parser;
    parser.feed(corpus.data(), corpus.size());
    std::size_t frames = 0;
    while (parser.next()) ++frames;
    EXPECT_EQ(frames, 13u);
    EXPECT_FALSE(parser.corrupt());
  }

  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = corpus;
    switch (rng.below(4)) {
      case 0: {  // byte flips
        const std::size_t flips = rng.below(8) + 1;
        for (std::size_t f = 0; f < flips; ++f) {
          mutated[rng.below(mutated.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      }
      case 1:  // truncation
        mutated.resize(rng.below(mutated.size()));
        break;
      case 2: {  // splice: drop a random middle run
        const std::size_t from = rng.below(mutated.size());
        const std::size_t len = rng.below(mutated.size() - from) + 1;
        mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(from),
                      mutated.begin() +
                          static_cast<std::ptrdiff_t>(from + len));
        break;
      }
      default: {  // duplicate a random run into a random spot
        const std::size_t from = rng.below(mutated.size());
        const std::size_t len = rng.below(mutated.size() - from) + 1;
        const std::vector<std::uint8_t> run(
            mutated.begin() + static_cast<std::ptrdiff_t>(from),
            mutated.begin() + static_cast<std::ptrdiff_t>(from + len));
        const std::size_t to = rng.below(mutated.size());
        mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(to),
                       run.begin(), run.end());
        break;
      }
    }
    exercise_parsers(mutated, rng);
  }
}

// ---- the --hosts / --serve / --lease CLI surface ----------------------

namespace {

CampaignCli parse_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "bench");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  int argc = static_cast<int>(argv.size());
  return consume_campaign_cli(argc, argv.data());
}

}  // namespace

TEST(DispatchCliTest, ParsesHostsServeAndLease) {
  const auto cli = parse_cli({"--hosts", "alpha:9001,127.0.0.1:65535",
                              "--lease", "4"});
  ASSERT_EQ(cli.hosts.size(), 2u);
  EXPECT_EQ(cli.hosts[0].host, "alpha");
  EXPECT_EQ(cli.hosts[0].port, 9001);
  EXPECT_EQ(cli.hosts[1].host, "127.0.0.1");
  EXPECT_EQ(cli.hosts[1].port, 65535);
  EXPECT_EQ(cli.lease_trials, 4u);
  EXPECT_EQ(cli.serve_port, -1);

  const auto agent = parse_cli({"--serve", "0"});
  EXPECT_EQ(agent.serve_port, 0);
  EXPECT_TRUE(agent.hosts.empty());
}

TEST(DispatchCliDeathTest, JunkHostsExitsTwo) {
  const auto junk = {"alpha",     "alpha:",     ":9001",     "alpha:0",
                     "alpha:70000", "alpha:90x1", "",          "a:1,,b:2",
                     "a:1,b"};
  for (const auto* hosts : junk) {
    EXPECT_EXIT(parse_cli({"--hosts", hosts}), ::testing::ExitedWithCode(2),
                "--hosts")
        << "accepted junk --hosts '" << hosts << "'";
  }
}

TEST(DispatchCliDeathTest, JunkServeExitsTwo) {
  EXPECT_EXIT(parse_cli({"--serve", "70000"}), ::testing::ExitedWithCode(2),
              "--serve");
  EXPECT_EXIT(parse_cli({"--serve", "many"}), ::testing::ExitedWithCode(2),
              "--serve");
  EXPECT_EXIT(parse_cli({"--serve", "-1"}), ::testing::ExitedWithCode(2),
              "--serve");
}

TEST(DispatchCliDeathTest, ServePlusHostsExitsTwo) {
  EXPECT_EXIT(parse_cli({"--serve", "9001", "--hosts", "a:1"}),
              ::testing::ExitedWithCode(2), "mutually exclusive");
}

// ---- journal write-failure latch (satellite bugfix) -------------------

TEST(JournalWriteFailureTest, LatchesDisabledInsteadOfThrowing) {
  const std::string path = temp_stem("jwf");
  auto journal = TrialJournal::open_append(path);
  const auto result = synthetic_result(5);
  journal.append(0, 5, result);
  EXPECT_TRUE(journal.healthy());

  const std::uint64_t before = TrialJournal::write_failures();
  ::close(journal.fd());  // inject EBADF: the documented test hook
  journal.append(1, 6, result);  // must degrade, not throw
  EXPECT_FALSE(journal.healthy());
  EXPECT_EQ(TrialJournal::write_failures(), before + 1);

  journal.append(2, 7, result);  // latched: a silent no-op
  EXPECT_EQ(TrialJournal::write_failures(), before + 1);

  // The record written while healthy survives intact.
  const auto loaded = TrialJournal::load(path);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].trial_index, 0u);
  expect_identical(loaded.entries[0].result, result);
  std::filesystem::remove(path);
}

TEST(JournalWriteFailureTest, SupervisedCampaignFinishesUnjournaled) {
  const std::string path = temp_stem("jwf_campaign");
  // Pre-latch a journal at the same path to prove append failures do
  // not propagate: the campaign itself must latch its own journal.
  SupervisorOptions options;
  options.threads = 1;
  options.journal_path = path;
  std::size_t sabotaged = 0;
  options.run_trial = [&](const ExperimentConfig& config) {
    return synthetic_result(config.seed);
  };
  // Sabotage from the progress callback: after the first trial lands,
  // close the journal's fd behind its back. Requires reaching into the
  // journal, which run_supervised owns — so instead point the journal
  // at a path whose directory disappears mid-run.
  const std::string doomed_dir =
      (std::filesystem::path{::testing::TempDir()} /
       ("fourbit_doomed_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(doomed_dir);
  options.journal_path = doomed_dir + "/campaign.journal";
  options.on_trial_done = [&](const TrialProgress& p) {
    if (p.completed == 1 && sabotaged == 0) {
      ++sabotaged;
      // Unlink the journal file and its directory: the already-open fd
      // keeps working on most filesystems, so ALSO exhaust it is not
      // portable — this test only asserts the campaign completes and
      // the counter plumbing reports whatever failures occurred.
      std::error_code ec;
      std::filesystem::remove_all(doomed_dir, ec);
    }
  };
  const auto report = run_supervised(scenario_trials(4, 60), options);
  EXPECT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(report.completed[i]);
    expect_identical(report.results[i], synthetic_result(60 + i));
  }
  std::error_code ec;
  std::filesystem::remove_all(doomed_dir, ec);
}

// ---- end-to-end localhost campaigns -----------------------------------

TEST(DispatchTest, EmptyHostListRunsLocally) {
  const auto trials = scenario_trials(6, 300);
  DispatchOptions options = dt_options({});
  const auto report = run_distributed(trials, options);
  const auto reference = reference_report(6, 300);
  ASSERT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    expect_identical(report.results[i], reference.results[i]);
  }
  EXPECT_EQ(report.host_losses, 0u);
}

TEST(DispatchTest, CleanTwoHostRunMatchesSingleProcess) {
  const std::uint64_t base = 400;
  const std::size_t n = 12;
  SpawnedAgent a{"clean", n, base};
  SpawnedAgent b{"clean", n, base};
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);

  const std::string stem = temp_stem("clean2");
  const std::string ref_stem = temp_stem("clean2_ref");
  DispatchOptions options = dt_options({a.port(), b.port()}, stem);
  options.lease_trials = 3;  // both hosts participate
  const auto trials = scenario_trials(n, base);
  const auto report = run_distributed(trials, options);
  const auto reference = reference_report(n, base, ref_stem);

  ASSERT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(report.completed[i]);
    expect_identical(report.results[i], reference.results[i]);
  }
  EXPECT_EQ(report.attempts, reference.attempts);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.host_losses, 0u);
  EXPECT_EQ(report.lease_reassignments, 0u);
  EXPECT_EQ(report.journal_write_failures, 0u);
  // The journal a distributed campaign compacts is byte-identical to
  // the single-process journal.
  EXPECT_EQ(slurp(stem), slurp(ref_stem));
  EXPECT_FALSE(slurp(stem).empty());
  // No shard files survive the compaction.
  EXPECT_FALSE(std::filesystem::exists(
      TrialJournal::shard_path(stem, kRemoteShardId)));
  EXPECT_FALSE(std::filesystem::exists(
      TrialJournal::shard_path(stem, kLocalShardId)));
  std::filesystem::remove(stem);
  std::filesystem::remove(ref_stem);
}

TEST(DispatchTest, HostSigkilledMidTrialLeaseReassigned) {
  const std::uint64_t base = 500;
  const std::size_t n = 16;
  SpawnedAgent a{"slow@25", n, base};
  SpawnedAgent b{"slow@25", n, base};
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);

  DispatchOptions options = dt_options({a.port(), b.port()});
  options.lease_trials = 8;  // half the campaign each: the victim is
                             // guaranteed to die mid-lease
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    b.kill_now();
  });
  const auto trials = scenario_trials(n, base);
  const auto report = run_distributed(trials, options);
  killer.join();

  const auto reference = reference_report(n, base);
  ASSERT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(report.completed[i]);
    expect_identical(report.results[i], reference.results[i]);
  }
  EXPECT_GE(report.host_losses, 1u);
  EXPECT_GE(report.lease_reassignments, 1u);
}

TEST(DispatchTest, StatusStaysWellFormedThroughHostLoss) {
  // The ISSUE acceptance scenario: a fleet campaign losing a host to
  // SIGKILL mid-lease must stream continuously valid fourbit.status/1
  // snapshots — strictly increasing seq, stable total, host sources with
  // the loss attributed — and land a settled final --status-json file,
  // while the campaign itself still completes every trial.
  const std::uint64_t base = 900;
  const std::size_t n = 16;
  SpawnedAgent a{"slow@25", n, base};
  SpawnedAgent b{"slow@25", n, base};
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);

  const std::string status_path = temp_stem("host_loss_status");
  DispatchOptions options = dt_options({a.port(), b.port()});
  options.lease_trials = 8;
  options.status_path = status_path;
  options.status_interval_ms = 30;
  std::mutex snaps_mutex;  // the all-hosts-dead fallback publisher is a
                           // second caller thread; never engaged here,
                           // but the callback contract allows it
  std::vector<StatusSnapshot> snaps;
  options.on_status = [&](const StatusSnapshot& snap) {
    const std::lock_guard<std::mutex> lock{snaps_mutex};
    snaps.push_back(snap);
  };
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    b.kill_now();
  });
  const auto report = run_distributed(scenario_trials(n, base), options);
  killer.join();

  ASSERT_TRUE(report.all_completed());
  EXPECT_GE(report.host_losses, 1u);
  ASSERT_EQ(report.host_health.size(), 2u);

  ASSERT_FALSE(snaps.empty());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].total, n);
    if (i > 0) {
      EXPECT_GT(snaps[i].seq, snaps[i - 1].seq);
    }
  }
  const auto& last = snaps.back();
  EXPECT_EQ(last.done, n);
  EXPECT_EQ(last.failed, 0u);
  EXPECT_EQ(last.in_flight, 0u);
  EXPECT_GE(last.host_losses, 1u);
  std::size_t host_rows = 0;
  std::uint64_t losses = 0;
  for (const auto& src : last.sources) {
    if (src.kind != StatusSource::Kind::kHost) continue;
    ++host_rows;
    losses += src.losses;
  }
  EXPECT_EQ(host_rows, 2u);
  EXPECT_GE(losses, 1u);

  const std::string text = slurp(status_path);
  EXPECT_NE(text.find("\"schema\":\"fourbit.status/1\""), std::string::npos);
  EXPECT_NE(text.find("\"done\":16"), std::string::npos);
  EXPECT_TRUE(text.ends_with("}\n"));
  EXPECT_FALSE(std::filesystem::exists(status_path + ".tmp"));
  std::filesystem::remove(status_path);
}

TEST(DispatchTest, AllHostsDeadFallsBackToLocalRun) {
  const std::uint64_t base = 600;
  const std::size_t n = 8;
  SpawnedAgent a{"slow@20", n, base};
  ASSERT_NE(a.port(), 0);

  // Host list: one real agent (killed almost immediately) and one port
  // nobody listens on. Every host dies; the campaign must not.
  DispatchOptions options = dt_options({a.port(), dead_port()});
  options.lease_trials = 4;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    a.kill_now();
  });
  const auto trials = scenario_trials(n, base);
  const auto report = run_distributed(trials, options);
  killer.join();

  const auto reference = reference_report(n, base);
  ASSERT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(report.completed[i]);
    expect_identical(report.results[i], reference.results[i]);
  }
  EXPECT_GE(report.host_losses, 1u);
}

TEST(DispatchTest, CrashLoopingTrialAcrossHostsBecomesHardCrash) {
  const std::uint64_t base = 700;
  const std::size_t n = 8;
  // Both agents SIGSEGV on trial 3: the trial crash-loops across the
  // fleet and must be quarantined as kHardCrash, not retried forever.
  SpawnedAgent a{"segv@3", n, base};
  SpawnedAgent b{"segv@3", n, base};
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);

  DispatchOptions options = dt_options({a.port(), b.port()});
  options.lease_trials = 2;
  options.max_trial_crashes = 2;
  const auto trials = scenario_trials(n, base);
  const auto report = run_distributed(trials, options);

  const auto reference = reference_report(n, base);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 3) continue;
    ASSERT_TRUE(report.completed[i]) << "trial " << i;
    expect_identical(report.results[i], reference.results[i]);
  }
  EXPECT_GE(report.host_losses, 1u);
  // Trial 3 either crash-looped into quarantine or — when an agent died
  // before its kTrialStart reached the coordinator, leaving the crash
  // unattributed — completed on the (clean) local fallback. Both are
  // acceptable terminal states; a hung campaign is not.
  if (!report.completed[3]) {
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].trial_index, 3u);
    EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);
  }
}

TEST(DispatchTest, CoordinatorSigkillResumeIsBitIdentical) {
  const std::uint64_t base = 800;
  const std::size_t n = 10;
  SpawnedAgent a{"slow@25", n, base};
  SpawnedAgent b{"slow@25", n, base};
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);

  const std::string stem = temp_stem("resume");
  const std::string ref_stem = temp_stem("resume_ref");
  const auto trials = scenario_trials(n, base);

  // First attempt runs in a fork and is SIGKILLed mid-campaign.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    DispatchOptions options = dt_options({a.port(), b.port()}, stem);
    options.lease_trials = 3;
    const auto ignored = run_distributed(trials, options);
    (void)ignored;
    ::_exit(0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);

  // Second attempt resumes from the journal shards the first left
  // behind — and the agents, which lost their session, serve it again.
  DispatchOptions options = dt_options({a.port(), b.port()}, stem);
  options.lease_trials = 3;
  const auto report = run_distributed(trials, options);
  const auto reference = reference_report(n, base, ref_stem);

  ASSERT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(report.completed[i]);
    expect_identical(report.results[i], reference.results[i]);
  }
  EXPECT_EQ(slurp(stem), slurp(ref_stem));
  EXPECT_FALSE(slurp(stem).empty());
  std::filesystem::remove(stem);
  std::filesystem::remove(ref_stem);
}

}  // namespace
}  // namespace fourbit::runner

int main(int argc, char** argv) {
  auto cli = fourbit::runner::consume_campaign_cli(argc, argv);
  if (cli.serve_port >= 0) {
    fourbit::runner::dt_agent_main(argc, argv, std::move(cli));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
