// Tests of the link-layer abstractions: the neighbor table (and its pin
// bit) and estimator interface plumbing.
#include <gtest/gtest.h>

#include <unordered_set>

#include "link/neighbor_table.hpp"
#include "link/packet_info.hpp"
#include "sim/rng.hpp"

namespace fourbit::link {
namespace {

struct Payload {
  int value = 0;
};

using Table = NeighborTable<Payload>;

TEST(NeighborTableTest, InsertAndFind) {
  Table t{4};
  EXPECT_EQ(t.size(), 0u);
  ASSERT_NE(t.insert(NodeId{1}, Payload{10}), nullptr);
  ASSERT_NE(t.insert(NodeId{2}, Payload{20}), nullptr);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(NodeId{1})->data.value, 10);
  EXPECT_EQ(t.find(NodeId{2})->data.value, 20);
  EXPECT_EQ(t.find(NodeId{3}), nullptr);
}

TEST(NeighborTableTest, FullTableRejectsInsert) {
  Table t{2};
  (void)t.insert(NodeId{1});
  (void)t.insert(NodeId{2});
  EXPECT_TRUE(t.full());
  EXPECT_EQ(t.insert(NodeId{3}), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(NeighborTableTest, UnboundedNeverFull) {
  Table t{0};
  EXPECT_TRUE(t.unbounded());
  for (std::uint16_t i = 0; i < 100; ++i) {
    ASSERT_NE(t.insert(NodeId{i}), nullptr);
  }
  EXPECT_FALSE(t.full());
  EXPECT_EQ(t.size(), 100u);
}

TEST(NeighborTableTest, PinBitBlocksRemove) {
  Table t{4};
  (void)t.insert(NodeId{1});
  EXPECT_TRUE(t.pin(NodeId{1}));
  EXPECT_FALSE(t.remove(NodeId{1}));  // pinned: must not be removed
  t.unpin(NodeId{1});
  EXPECT_TRUE(t.remove(NodeId{1}));
  EXPECT_EQ(t.size(), 0u);
}

TEST(NeighborTableTest, PinOfAbsentNodeFails) {
  Table t{4};
  EXPECT_FALSE(t.pin(NodeId{9}));
}

TEST(NeighborTableTest, RandomEvictionNeverTouchesPinned) {
  sim::Rng rng{3};
  for (int trial = 0; trial < 50; ++trial) {
    Table t{4};
    (void)t.insert(NodeId{1});
    (void)t.insert(NodeId{2});
    (void)t.insert(NodeId{3});
    (void)t.insert(NodeId{4});
    EXPECT_TRUE(t.pin(NodeId{2}));
    EXPECT_TRUE(t.evict_random_unpinned(rng));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_NE(t.find(NodeId{2}), nullptr) << "pinned entry was evicted";
  }
}

TEST(NeighborTableTest, AllPinnedMeansNoEviction) {
  sim::Rng rng{3};
  Table t{2};
  (void)t.insert(NodeId{1});
  (void)t.insert(NodeId{2});
  EXPECT_TRUE(t.pin(NodeId{1}));
  EXPECT_TRUE(t.pin(NodeId{2}));
  EXPECT_FALSE(t.evict_random_unpinned(rng));
  EXPECT_EQ(t.size(), 2u);
}

TEST(NeighborTableTest, RandomEvictionIsRoughlyUniform) {
  sim::Rng rng{17};
  std::unordered_map<NodeId, int> evicted;
  const int trials = 3000;
  for (int trial = 0; trial < trials; ++trial) {
    Table t{3};
    (void)t.insert(NodeId{1});
    (void)t.insert(NodeId{2});
    (void)t.insert(NodeId{3});
    EXPECT_TRUE(t.evict_random_unpinned(rng));
    for (std::uint16_t i = 1; i <= 3; ++i) {
      if (t.find(NodeId{i}) == nullptr) evicted[NodeId{i}] += 1;
    }
  }
  for (std::uint16_t i = 1; i <= 3; ++i) {
    EXPECT_NEAR(evicted[NodeId{i}], trials / 3, trials / 10);
  }
}

TEST(NeighborTableTest, EvictWorstUsesOrdering) {
  Table t{3};
  (void)t.insert(NodeId{1}, Payload{10});
  (void)t.insert(NodeId{2}, Payload{99});
  (void)t.insert(NodeId{3}, Payload{50});
  const auto worse = [](const Table::Entry& a, const Table::Entry& b) {
    return b.data.value > a.data.value;  // bigger value = worse
  };
  EXPECT_TRUE(t.evict_worst_unpinned(worse));
  EXPECT_EQ(t.find(NodeId{2}), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(NeighborTableTest, EvictWorstRespectsPin) {
  Table t{3};
  (void)t.insert(NodeId{1}, Payload{10});
  (void)t.insert(NodeId{2}, Payload{99});
  EXPECT_TRUE(t.pin(NodeId{2}));
  const auto worse = [](const Table::Entry& a, const Table::Entry& b) {
    return b.data.value > a.data.value;
  };
  EXPECT_TRUE(t.evict_worst_unpinned(worse));
  EXPECT_NE(t.find(NodeId{2}), nullptr);
  EXPECT_EQ(t.find(NodeId{1}), nullptr);
}

TEST(NeighborTableTest, ClearPinsUnpinsEverything) {
  sim::Rng rng{3};
  Table t{2};
  (void)t.insert(NodeId{1});
  (void)t.insert(NodeId{2});
  (void)t.pin(NodeId{1});
  (void)t.pin(NodeId{2});
  t.clear_pins();
  EXPECT_TRUE(t.evict_random_unpinned(rng));
  EXPECT_EQ(t.size(), 1u);
}

TEST(NeighborTableTest, RemoveAbsentIsFalse) {
  Table t{2};
  EXPECT_FALSE(t.remove(NodeId{42}));
}

TEST(PacketPhyInfoTest, Defaults) {
  PacketPhyInfo info;
  EXPECT_FALSE(info.white);
  EXPECT_EQ(info.lqi, 0);
}

}  // namespace
}  // namespace fourbit::link
