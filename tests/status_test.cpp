// Tests of live campaign observability (runner/status.hpp): log2
// histograms and phase timers, the fourbit.status/1 snapshot codec and
// its junk rejection, stamp/merge/publish helpers, the StatusBoard
// delta accumulator, the --status-* CLI surface, and end-to-end status
// streaming from supervised and multi-process campaigns — including the
// off-band guarantee that journal and trace bytes are identical with
// status on or off.
//
// This binary self-execs as its own workers for the multi-process
// tests: main() checks for the hidden --worker-fd flag and, when
// present, rebuilds the trial list from --st-* flags and enters
// run_worker with a scenario-driven run_trial override.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/byte_io.hpp"
#include "runner/campaign.hpp"
#include "runner/status.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {
namespace {

// ---- shared scenario machinery (used by tests AND worker mode) --------

/// Deterministic fake result, a pure function of the seed.
ExperimentResult synthetic_result(std::uint64_t seed) {
  ExperimentResult r;
  r.cost = 1.0 + static_cast<double>(seed) * 0.25;
  r.delivery_ratio = 1.0 / (1.0 + static_cast<double>(seed % 7));
  r.mean_depth = static_cast<double>(seed % 5);
  r.per_node_delivery = {0.5, static_cast<double>(seed) * 0.01};
  r.generated = seed * 3;
  r.delivered = seed * 2;
  r.data_tx = seed + 11;
  r.parent_changes = seed % 3;
  r.final_tree.depths = {1, 2, static_cast<int>(seed % 4)};
  r.final_tree.mean_depth = 1.5;
  return r;
}

std::vector<ExperimentConfig> scenario_trials(std::size_t n,
                                              std::uint64_t base) {
  std::vector<ExperimentConfig> trials(n);
  for (std::size_t i = 0; i < n; ++i) trials[i].seed = base + i;
  return trials;
}

/// A small REAL simulation derived purely from the seed: exercises the
/// full engine so the registry carries real sim/ rows into the board.
ExperimentConfig real_trial(std::uint64_t seed) {
  sim::Rng rng{seed};
  ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.testbed.topology.nodes.resize(12);
  cfg.duration = sim::Duration::from_minutes(1.0);
  cfg.seed = seed;
  return cfg;
}

struct Scenario {
  std::string kind = "clean";
  std::size_t index = 0;
};

Scenario parse_scenario(const std::string& text) {
  Scenario s;
  const auto at = text.find('@');
  if (at == std::string::npos) {
    s.kind = text;
  } else {
    s.kind = text.substr(0, at);
    s.index = static_cast<std::size_t>(
        std::strtoul(text.c_str() + at + 1, nullptr, 10));
  }
  return s;
}

/// Worker-side trial executor: paces trials so the 20 ms status cadence
/// in these tests catches the campaign mid-flight, and misbehaves per
/// the scenario ("segv@N" kills the worker on trial N).
std::function<ExperimentResult(const ExperimentConfig&)> scenario_run_trial(
    Scenario scenario) {
  return [scenario](const ExperimentConfig& config) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const std::size_t index =
        config.trace_trial >= 0
            ? static_cast<std::size_t>(config.trace_trial)
            : static_cast<std::size_t>(-1);
    if (scenario.kind == "segv" && index == scenario.index) {
      ::raise(SIGSEGV);
    }
    return synthetic_result(config.seed);
  };
}

}  // namespace

/// Worker-mode entry (called from main when --worker-fd is present).
[[noreturn]] void st_worker_main(int argc, char** argv, CampaignCli cli) {
  const Scenario scenario = parse_scenario(
      consume_flag(argc, argv, "--st-scenario").value_or("clean"));
  const std::size_t n = static_cast<std::size_t>(
      consume_uint_flag(argc, argv, "--st-trials").value_or(0));
  const std::uint64_t base =
      consume_uint_flag(argc, argv, "--st-seed").value_or(1);
  auto options = cli.supervisor_options();
  options.run_trial = scenario_run_trial(scenario);
  run_worker(scenario_trials(n, base), cli, std::move(options));
}

namespace {

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
}

std::string temp_path(const char* name) {
  return (std::filesystem::path{::testing::TempDir()} /
          (std::string{"fourbit_status_"} + name + "_" +
           std::to_string(::getpid())))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Not a JSON parser: a quote/escape-aware brace and bracket balance
/// check, which is exactly what catches torn writes, unescaped strings,
/// and half-rendered objects.
bool well_formed_json(const std::string& text) {
  if (text.empty() || text.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

const StatusCounter* find_counter(const StatusSnapshot& snap,
                                  const std::string& component,
                                  const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.component == component && c.name == name) return &c;
  }
  return nullptr;
}

const StatusGauge* find_gauge(const StatusSnapshot& snap,
                              const std::string& component,
                              const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.component == component && g.name == name) return &g;
  }
  return nullptr;
}

const sim::Histogram* find_hist(const StatusSnapshot& snap,
                                const std::string& component,
                                const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.component == component && h.name == name) return &h.hist;
  }
  return nullptr;
}

// ---- log2 histograms --------------------------------------------------

TEST(HistogramTest, BucketEdgesAndFloors) {
  EXPECT_EQ(sim::histogram_bucket(0), 0u);
  EXPECT_EQ(sim::histogram_bucket(1), 1u);
  EXPECT_EQ(sim::histogram_bucket(2), 2u);
  EXPECT_EQ(sim::histogram_bucket(3), 2u);
  EXPECT_EQ(sim::histogram_bucket(4), 3u);
  EXPECT_EQ(sim::histogram_bucket((std::uint64_t{1} << 62)), 63u);
  EXPECT_EQ(sim::histogram_bucket(~std::uint64_t{0}), 63u);
  EXPECT_EQ(sim::histogram_bucket_floor(0), 0u);
  EXPECT_EQ(sim::histogram_bucket_floor(1), 1u);
  EXPECT_EQ(sim::histogram_bucket_floor(5), 16u);
  // Every value lands in the bucket whose floor it is at or above.
  for (const std::uint64_t v : {0ull, 1ull, 7ull, 1000ull, 123456789ull}) {
    EXPECT_GE(v, sim::histogram_bucket_floor(sim::histogram_bucket(v)));
  }
}

TEST(HistogramTest, RecordMergeMeanQuantile) {
  sim::Histogram a;
  a.record(0);
  a.record(5);
  a.record(1000);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 1005u);
  EXPECT_EQ(a.bins[0], 1u);
  EXPECT_EQ(a.bins[sim::histogram_bucket(5)], 1u);
  EXPECT_EQ(a.bins[sim::histogram_bucket(1000)], 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 335.0);

  sim::Histogram b;
  b.record(5);
  b.merge(a);
  EXPECT_EQ(b.count, 4u);
  EXPECT_EQ(b.sum, 1010u);
  EXPECT_EQ(b.bins[sim::histogram_bucket(5)], 2u);

  // Quantiles are monotone in q and bounded by the data's bucket range.
  EXPECT_LE(a.quantile(0.10), a.quantile(0.50));
  EXPECT_LE(a.quantile(0.50), a.quantile(0.99));
  EXPECT_LE(a.quantile(0.99), 1024.0);  // upper edge of 1000's bucket
}

TEST(HistogramTest, EmptyQuantileAndMeanAreZero) {
  const sim::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

// ---- phase timers ------------------------------------------------------

TEST(PhaseTimerTest, DisabledRegistersNothing) {
  sim::TelemetryContext context;
  ASSERT_FALSE(context.profiling());
  {
    sim::PhaseTimer timer{context, sim::ProfilePhase::kEventDispatch};
  }
  // The off-band guarantee rests on this: no profiling, no registry
  // rows, so exported traces are byte-identical to a build without
  // timers in the code path.
  EXPECT_TRUE(context.histograms().empty());
}

TEST(PhaseTimerTest, EnabledRecordsIntoProfileHistogram) {
  sim::TelemetryContext context;
  context.set_profiling(true);
  {
    sim::PhaseTimer timer{context, sim::ProfilePhase::kBatchKernel};
  }
  {
    sim::PhaseTimer timer{context, sim::ProfilePhase::kBatchKernel};
  }
  ASSERT_EQ(context.histograms().size(), 1u);
  const auto& row = context.histograms().front();
  EXPECT_EQ(row.component, "profile");
  EXPECT_EQ(row.hist.count, 2u);
}

// ---- snapshot codec ----------------------------------------------------

StatusSnapshot sample_snapshot() {
  StatusSnapshot snap;
  snap.seq = 7;
  snap.total = 100;
  snap.done = 42;
  snap.failed = 3;
  snap.retried = 5;
  snap.in_flight = 9;
  snap.replayed = 11;
  snap.hard_crashes = 2;
  snap.worker_respawns = 4;
  snap.host_losses = 1;
  snap.lease_reassignments = 6;
  snap.elapsed_s = 12.5;
  snap.trials_per_s = 3.25;
  snap.eta_s = -1.0;
  StatusSource w;
  w.name = "w0";
  w.kind = StatusSource::Kind::kWorker;
  w.alive = true;
  w.done = 21;
  w.failed = 1;
  w.in_flight = 3;
  w.losses = 2;
  w.lease = "0-4,9";
  snap.sources.push_back(w);
  StatusSource h;
  h.name = "127.0.0.1:9001";
  h.kind = StatusSource::Kind::kHost;
  h.alive = false;
  h.retired = true;
  h.fruitless = 3;
  snap.sources.push_back(h);
  snap.counters.push_back(StatusCounter{"sim", "eq_resizes", 17});
  snap.gauges.push_back(StatusGauge{"sim", "arena_bytes", 1.5e6});
  StatusHistogram hist;
  hist.component = "runner";
  hist.name = "trial_wall_ms";
  hist.hist.record(0);
  hist.hist.record(5);
  hist.hist.record(1000);
  snap.histograms.push_back(hist);
  return snap;
}

TEST(StatusCodecTest, RoundTripsEveryField) {
  const StatusSnapshot snap = sample_snapshot();
  const auto payload = encode_status_snapshot(snap);
  const auto out = decode_status_snapshot(payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, snap.seq);
  EXPECT_EQ(out->total, snap.total);
  EXPECT_EQ(out->done, snap.done);
  EXPECT_EQ(out->failed, snap.failed);
  EXPECT_EQ(out->retried, snap.retried);
  EXPECT_EQ(out->in_flight, snap.in_flight);
  EXPECT_EQ(out->replayed, snap.replayed);
  EXPECT_EQ(out->hard_crashes, snap.hard_crashes);
  EXPECT_EQ(out->worker_respawns, snap.worker_respawns);
  EXPECT_EQ(out->host_losses, snap.host_losses);
  EXPECT_EQ(out->lease_reassignments, snap.lease_reassignments);
  EXPECT_EQ(out->elapsed_s, snap.elapsed_s);
  EXPECT_EQ(out->trials_per_s, snap.trials_per_s);
  EXPECT_EQ(out->eta_s, snap.eta_s);
  ASSERT_EQ(out->sources.size(), 2u);
  EXPECT_EQ(out->sources[0].name, "w0");
  EXPECT_EQ(out->sources[0].kind, StatusSource::Kind::kWorker);
  EXPECT_TRUE(out->sources[0].alive);
  EXPECT_FALSE(out->sources[0].retired);
  EXPECT_EQ(out->sources[0].done, 21u);
  EXPECT_EQ(out->sources[0].failed, 1u);
  EXPECT_EQ(out->sources[0].in_flight, 3u);
  EXPECT_EQ(out->sources[0].losses, 2u);
  EXPECT_EQ(out->sources[0].lease, "0-4,9");
  EXPECT_EQ(out->sources[1].name, "127.0.0.1:9001");
  EXPECT_EQ(out->sources[1].kind, StatusSource::Kind::kHost);
  EXPECT_FALSE(out->sources[1].alive);
  EXPECT_TRUE(out->sources[1].retired);
  EXPECT_EQ(out->sources[1].fruitless, 3u);
  ASSERT_EQ(out->counters.size(), 1u);
  EXPECT_EQ(out->counters[0].component, "sim");
  EXPECT_EQ(out->counters[0].name, "eq_resizes");
  EXPECT_EQ(out->counters[0].value, 17u);
  ASSERT_EQ(out->gauges.size(), 1u);
  EXPECT_EQ(out->gauges[0].value, 1.5e6);
  ASSERT_EQ(out->histograms.size(), 1u);
  EXPECT_EQ(out->histograms[0].hist.count, 3u);
  EXPECT_EQ(out->histograms[0].hist.sum, 1005u);
  EXPECT_EQ(out->histograms[0].hist.bins, snap.histograms[0].hist.bins);
}

TEST(StatusCodecTest, RejectsBadVersion) {
  auto payload = encode_status_snapshot(sample_snapshot());
  payload[0] = 2;
  EXPECT_FALSE(decode_status_snapshot(payload).has_value());
}

TEST(StatusCodecTest, RejectsEveryTruncation) {
  const auto payload = encode_status_snapshot(sample_snapshot());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_status_snapshot(
                     std::span<const std::uint8_t>{payload.data(), cut})
                     .has_value())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(StatusCodecTest, RejectsTrailingBytes) {
  auto payload = encode_status_snapshot(sample_snapshot());
  payload.push_back(0);
  EXPECT_FALSE(decode_status_snapshot(payload).has_value());
}

TEST(StatusCodecTest, RejectsOversizedTables) {
  // An EMPTY snapshot ends in four u32 table counts; the first of them
  // (sources) sits 16 bytes from the end. Claiming 2^32-1 sources must
  // be rejected up front, not chased into a multi-gigabyte loop.
  auto payload = encode_status_snapshot(StatusSnapshot{});
  ASSERT_GE(payload.size(), 16u);
  const std::size_t at = payload.size() - 16;
  payload[at] = payload[at + 1] = payload[at + 2] = payload[at + 3] = 0xFF;
  EXPECT_FALSE(decode_status_snapshot(payload).has_value());
}

TEST(StatusCodecTest, RejectsOutOfRangeHistogramBin) {
  std::vector<std::uint8_t> payload;
  ByteWriter w{payload};
  w.u8(1);                                  // version
  for (int i = 0; i < 11; ++i) w.u64(0);    // lifecycle counts
  for (int i = 0; i < 3; ++i) w.f64(0.0);   // timing
  w.u32(0);                                 // sources
  w.u32(0);                                 // counters
  w.u32(0);                                 // gauges
  w.u32(1);                                 // one histogram...
  w.u16(0);                                 // empty component
  w.u16(0);                                 // empty name
  w.u64(1);                                 // count
  w.u64(1);                                 // sum
  w.u8(1);                                  // one occupied bin...
  w.u8(200);                                // ...at an impossible index
  w.u64(1);
  EXPECT_FALSE(decode_status_snapshot(payload).has_value());
}

TEST(StatusCodecTest, TruncatesOverlongStringsAtEncode) {
  // A pathological lease span (10k+ singleton trials) must not make the
  // snapshot undecodable: encode caps the string, decode still works.
  StatusSnapshot snap;
  StatusSource s;
  s.name = "w0";
  s.lease = std::string(2000, 'x');
  snap.sources.push_back(s);
  const auto out = decode_status_snapshot(encode_status_snapshot(snap));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->sources.size(), 1u);
  EXPECT_EQ(out->sources[0].lease.size(), 512u);
}

TEST(StatusCodecTest, RidesTheWorkerPipeFrame) {
  // The full path a worker snapshot travels: status codec -> FW kStatus
  // record -> CRC-framed pipe -> parser -> status codec.
  const StatusSnapshot snap = sample_snapshot();
  const auto bytes = encode_status_snapshot(snap);
  WorkerRecord rec;
  rec.kind = WorkerRecordKind::kStatus;
  rec.worker = 3;
  rec.what.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  const auto frame = encode_worker_record(rec);

  WorkerPipeParser parser;
  parser.feed(frame.data(), frame.size());
  const auto out = parser.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(parser.corrupt());
  ASSERT_EQ(out->kind, WorkerRecordKind::kStatus);
  const auto decoded = decode_status_snapshot(std::span{
      reinterpret_cast<const std::uint8_t*>(out->what.data()),
      out->what.size()});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, snap.seq);
  EXPECT_EQ(decoded->done, snap.done);
  ASSERT_EQ(decoded->sources.size(), 2u);
  EXPECT_EQ(decoded->sources[0].lease, "0-4,9");
}

// ---- stamping ----------------------------------------------------------

TEST(StampStatusTest, RateCountsFreshSettledTrialsOnly) {
  StatusSnapshot snap;
  snap.done = 4;
  snap.failed = 1;
  snap.replayed = 2;  // replays didn't cost this run wall time
  stamp_status(snap, 9, 10.0, 10);
  EXPECT_EQ(snap.seq, 9u);
  EXPECT_EQ(snap.total, 10u);
  EXPECT_DOUBLE_EQ(snap.elapsed_s, 10.0);
  EXPECT_DOUBLE_EQ(snap.trials_per_s, 0.3);  // (5 settled - 2 replayed) / 10s
  EXPECT_NEAR(snap.eta_s, 5.0 / 0.3, 1e-9);
}

TEST(StampStatusTest, EtaIsUnknownWithoutRateAndZeroWhenDone) {
  StatusSnapshot idle;
  stamp_status(idle, 1, 5.0, 10);
  EXPECT_DOUBLE_EQ(idle.trials_per_s, 0.0);
  EXPECT_LT(idle.eta_s, 0.0);  // unknown, rendered as JSON null

  StatusSnapshot replay_only;
  replay_only.done = 5;
  replay_only.replayed = 7;  // more replays than settles: clamp, no rate
  stamp_status(replay_only, 2, 5.0, 10);
  EXPECT_DOUBLE_EQ(replay_only.trials_per_s, 0.0);
  EXPECT_LT(replay_only.eta_s, 0.0);

  StatusSnapshot finished;
  finished.done = 8;
  finished.failed = 2;  // failures settle the campaign too
  stamp_status(finished, 3, 5.0, 10);
  EXPECT_DOUBLE_EQ(finished.eta_s, 0.0);
}

// ---- JSON rendering and the atomic file publisher ----------------------

TEST(StatusJsonTest, WellFormedWithSchemaAndNullEta) {
  StatusSnapshot snap = sample_snapshot();
  snap.sources[0].name = "w\"0\\";  // must be escaped, not break the JSON
  const std::string json = status_json(snap);
  EXPECT_TRUE(well_formed_json(json)) << json;
  EXPECT_TRUE(json.ends_with("}\n"));
  EXPECT_NE(json.find("\"schema\":\"fourbit.status/1\""), std::string::npos);
  EXPECT_NE(json.find("\"eta_s\":null"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"lease\":\"0-4,9\""), std::string::npos);

  snap.eta_s = 42.0;
  const std::string with_eta = status_json(snap);
  EXPECT_NE(with_eta.find("\"eta_s\":42.0"), std::string::npos);
  EXPECT_EQ(with_eta.find("null"), std::string::npos);
}

TEST(WriteStatusFileTest, AtomicPublishLeavesNoTemp) {
  const std::string path = temp_path("atomic.json");
  ASSERT_TRUE(write_status_file(path, "{\"a\":1}\n"));
  EXPECT_EQ(slurp(path), "{\"a\":1}\n");
  ASSERT_TRUE(write_status_file(path, "{\"a\":2}\n"));  // overwrite
  EXPECT_EQ(slurp(path), "{\"a\":2}\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

// ---- metric merging ----------------------------------------------------

TEST(MergeStatusMetricsTest, SumsCountersLastWinsGaugesMergesHists) {
  StatusSnapshot into;
  into.counters.push_back(StatusCounter{"sim", "eq_resizes", 1});
  into.gauges.push_back(StatusGauge{"sim", "arena_bytes", 100.0});
  StatusHistogram ha;
  ha.component = "runner";
  ha.name = "trial_wall_ms";
  ha.hist.record(10);
  into.histograms.push_back(ha);

  StatusSnapshot part;
  part.counters.push_back(StatusCounter{"sim", "eq_resizes", 2});
  part.counters.push_back(StatusCounter{"phy", "frames", 5});
  part.gauges.push_back(StatusGauge{"sim", "arena_bytes", 50.0});
  StatusHistogram hb = ha;
  hb.hist.record(20);
  part.histograms.push_back(hb);
  part.done = 999;  // lifecycle fields are the caller's, never merged

  merge_status_metrics(into, part);
  EXPECT_EQ(into.done, 0u);
  const auto* resizes = find_counter(into, "sim", "eq_resizes");
  ASSERT_NE(resizes, nullptr);
  EXPECT_EQ(resizes->value, 3u);
  const auto* frames = find_counter(into, "phy", "frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, 5u);
  const auto* arena = find_gauge(into, "sim", "arena_bytes");
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->value, 50.0);
  const auto* wall = find_hist(into, "runner", "trial_wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 3u);  // 1 from into + 2 from part
}

// ---- StatusBoard -------------------------------------------------------

TEST(StatusBoardTest, LifecycleCounts) {
  StatusBoard board;
  board.trial_started(0);
  board.trial_started(1);
  StatusSnapshot snap;
  board.fill_snapshot(snap);
  EXPECT_EQ(snap.in_flight, 2u);

  board.attempt_reset(1);
  board.trial_settled(0, /*failed=*/false, 12);
  board.trial_settled(1, /*failed=*/true, 34);
  board.add_replayed(3);
  board.fill_snapshot(snap);
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_EQ(snap.done, 4u);  // 1 fresh + 3 replayed
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.retried, 1u);
  EXPECT_EQ(snap.replayed, 3u);
  const auto* wall = find_hist(snap, "runner", "trial_wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 2u);
  EXPECT_EQ(wall->sum, 46u);
}

TEST(StatusBoardTest, RegistryDeltasCountEachIncrementOnce) {
  sim::TelemetryContext context;
  auto* tx1 = context.counter("phy", "tx", 1);
  auto* tx2 = context.counter("phy", "tx", 2);  // per-node rows aggregate
  auto* arena = context.gauge("sim", "arena_bytes");
  auto* backoff = context.histogram("mac", "backoff");
  *tx1 = 5;
  *tx2 = 2;
  *arena = 100.0;
  backoff->record(3);

  StatusBoard board;
  board.trial_started(0);
  board.publish_registry(0, context);
  StatusSnapshot snap;
  board.fill_snapshot(snap);
  const auto* tx = find_counter(snap, "phy", "tx");
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->value, 7u);

  // A second push of the SAME registry must add only the growth.
  *tx1 = 9;
  *arena = 50.0;
  backoff->record(5);
  board.publish_registry(0, context);
  board.fill_snapshot(snap);
  tx = find_counter(snap, "phy", "tx");
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->value, 11u);  // 7 + delta of 4, not 7 + 11
  const auto* gauge = find_gauge(snap, "sim", "arena_bytes");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 50.0);  // gauges are last-wins
  const auto* hist = find_hist(snap, "mac", "backoff");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);  // each record() counted exactly once
}

TEST(StatusBoardTest, RegistryRestartTakesWholeValue) {
  StatusBoard board;
  board.trial_started(0);
  {
    sim::TelemetryContext context;
    *context.counter("phy", "tx") = 9;
    board.publish_registry(0, context);
  }
  // The trial retried: its fresh registry restarts below the last-seen
  // value, and every increment in it is new.
  board.attempt_reset(0);
  {
    sim::TelemetryContext context;
    *context.counter("phy", "tx") = 4;
    board.publish_registry(0, context);
  }
  StatusSnapshot snap;
  board.fill_snapshot(snap);
  const auto* tx = find_counter(snap, "phy", "tx");
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->value, 13u);

  // Even WITHOUT the reset, a value below last-seen means restart.
  {
    sim::TelemetryContext context;
    *context.counter("phy", "tx") = 2;  // seen is 4: must add whole 2
    board.publish_registry(0, context);
  }
  board.fill_snapshot(snap);
  tx = find_counter(snap, "phy", "tx");
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->value, 15u);
}

TEST(StatusBoardTest, AbsorbKeepsDeadSourceMetrics) {
  StatusBoard board;
  StatusSnapshot part;
  part.counters.push_back(StatusCounter{"phy", "frames", 5});
  StatusHistogram h;
  h.component = "runner";
  h.name = "trial_wall_ms";
  h.hist.record(7);
  part.histograms.push_back(h);
  board.absorb_metrics(part);
  board.absorb_metrics(part);  // two dead incarnations
  StatusSnapshot snap;
  board.fill_snapshot(snap);
  const auto* frames = find_counter(snap, "phy", "frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, 10u);
  const auto* wall = find_hist(snap, "runner", "trial_wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 2u);
}

// ---- StatusPublisher ---------------------------------------------------

TEST(StatusPublisherTest, TicksPeriodicallyAndOnceAtDestruction) {
  std::atomic<int> ticks{0};
  {
    StatusPublisher publisher{10, [&] { ++ticks; }};
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Several periodic ticks plus the guaranteed final one.
  EXPECT_GE(ticks.load(), 3);

  ticks = 0;
  {
    StatusPublisher publisher{60'000, [&] { ++ticks; }};
    // Destroyed long before the first interval elapses...
  }
  // ...and the final tick still fired: pollers always see the settled
  // end state.
  EXPECT_EQ(ticks.load(), 1);
}

// ---- the --status-* CLI surface ----------------------------------------

std::vector<char*> make_argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(StatusCliTest, ParsesStatusFlags) {
  std::vector<std::string> args = {"bench",
                                   "--status-json", "/tmp/st.json",
                                   "--status-interval-ms", "250",
                                   "--profile-phases"};
  auto argv = make_argv(args);
  int argc = static_cast<int>(argv.size());
  const auto cli = consume_campaign_cli(argc, argv.data());
  EXPECT_EQ(cli.status_json, "/tmp/st.json");
  EXPECT_EQ(cli.status_interval_ms, 250u);
  EXPECT_TRUE(cli.profile_phases);
  EXPECT_EQ(argc, 1);  // everything consumed

  std::vector<std::string> bare = {"bench"};
  auto bare_argv = make_argv(bare);
  int bare_argc = static_cast<int>(bare_argv.size());
  const auto defaults = consume_campaign_cli(bare_argc, bare_argv.data());
  EXPECT_TRUE(defaults.status_json.empty());
  EXPECT_EQ(defaults.status_interval_ms, 1000u);
  EXPECT_FALSE(defaults.profile_phases);
}

void parse_status_interval(const char* value) {
  std::vector<std::string> args = {"bench", "--status-interval-ms", value};
  auto argv = make_argv(args);
  int argc = static_cast<int>(argv.size());
  (void)consume_campaign_cli(argc, argv.data());
}

TEST(StatusCliDeathTest, RejectsZeroIntervalWithExit2) {
  EXPECT_EXIT(parse_status_interval("0"), ::testing::ExitedWithCode(2),
              "--status-interval-ms");
}

TEST(StatusCliDeathTest, RejectsJunkIntervalWithExit2) {
  EXPECT_EXIT(parse_status_interval("soon"), ::testing::ExitedWithCode(2),
              "--status-interval-ms");
}

// ---- supervised campaigns feeding a board ------------------------------

TEST(SupervisedStatusTest, BoardMatchesReportAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 4u}) {
    StatusBoard board;
    SupervisorOptions options;
    options.threads = threads;
    options.status = &board;
    options.run_trial = [](const ExperimentConfig& config) {
      if (config.seed % 3 == 0) {
        throw std::runtime_error("scenario failure");
      }
      return synthetic_result(config.seed);
    };
    const auto report = run_supervised(scenario_trials(9, 100), options);
    ASSERT_EQ(report.failures.size(), 3u);  // seeds 102, 105, 108

    StatusSnapshot snap;
    board.fill_snapshot(snap);
    EXPECT_EQ(snap.done, 6u) << "threads=" << threads;
    EXPECT_EQ(snap.failed, 3u);
    EXPECT_EQ(snap.in_flight, 0u);
    const auto* wall = find_hist(snap, "runner", "trial_wall_ms");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->count, 9u);  // every settle, failures included
  }
}

TEST(SupervisedStatusTest, ReplayedTrialsCountAsReplayed) {
  const std::string journal = temp_path("replay.journal");
  SupervisorOptions options;
  options.threads = 2;
  options.journal_path = journal;
  options.run_trial = [](const ExperimentConfig& config) {
    return synthetic_result(config.seed);
  };
  const auto first = run_supervised(scenario_trials(6, 200), options);
  ASSERT_TRUE(first.all_completed());

  StatusBoard board;
  options.status = &board;
  const auto second = run_supervised(scenario_trials(6, 200), options);
  EXPECT_EQ(second.replayed, 6u);
  StatusSnapshot snap;
  board.fill_snapshot(snap);
  EXPECT_EQ(snap.replayed, 6u);
  EXPECT_EQ(snap.done, 6u);
  std::filesystem::remove(journal);
}

TEST(SupervisedStatusTest, RealTrialMetricsFlowAndBytesStayIdentical) {
  // Two REAL trials, run with and without a status board: the board
  // must pick up the engine-health registry rows (sim/arena_bytes,
  // sim/eq_resizes), and the journal and per-trial trace files must be
  // byte-identical — status is strictly off-band.
  const std::vector<ExperimentConfig> trials = {real_trial(900),
                                                real_trial(901)};
  const auto run = [&](const char* tag, StatusBoard* board) {
    SupervisorOptions options;
    options.threads = 1;
    options.journal_path = temp_path(tag) + ".journal";
    options.trace_path_base = temp_path(tag) + ".jsonl";
    options.status = board;
    return run_supervised(trials, options);
  };
  const auto plain = run("plain", nullptr);
  StatusBoard board;
  const auto observed = run("observed", &board);
  ASSERT_TRUE(plain.all_completed());
  ASSERT_TRUE(observed.all_completed());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    expect_identical(plain.results[i], observed.results[i]);
  }

  const std::string plain_journal = temp_path("plain") + ".journal";
  const std::string observed_journal = temp_path("observed") + ".journal";
  EXPECT_FALSE(slurp(plain_journal).empty());
  EXPECT_EQ(slurp(plain_journal), slurp(observed_journal));
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto plain_trace = trial_trace_path(temp_path("plain") + ".jsonl",
                                              i, trials[i].seed);
    const auto observed_trace = trial_trace_path(
        temp_path("observed") + ".jsonl", i, trials[i].seed);
    EXPECT_FALSE(slurp(plain_trace).empty());
    EXPECT_EQ(slurp(plain_trace), slurp(observed_trace));
    std::filesystem::remove(plain_trace);
    std::filesystem::remove(observed_trace);
  }
  std::filesystem::remove(plain_journal);
  std::filesystem::remove(observed_journal);

  StatusSnapshot snap;
  board.fill_snapshot(snap);
  EXPECT_EQ(snap.done, 2u);
  EXPECT_NE(find_counter(snap, "sim", "eq_resizes"), nullptr);
  EXPECT_NE(find_gauge(snap, "sim", "arena_bytes"), nullptr);
  const auto* wall = find_hist(snap, "runner", "trial_wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 2u);
}

TEST(LocalCampaignStatusTest, WritesFinalSettledStatusFile) {
  const std::string status_path = temp_path("local.json");
  CampaignCli cli;
  cli.threads = 1;
  cli.status_json = status_path;
  cli.status_interval_ms = 25;
  const std::vector<ExperimentConfig> trials = {real_trial(910),
                                                real_trial(911)};
  const auto report = run_campaign(trials, cli, {});
  ASSERT_TRUE(report.all_completed());

  const std::string text = slurp(status_path);
  EXPECT_TRUE(well_formed_json(text)) << text;
  EXPECT_NE(text.find("\"schema\":\"fourbit.status/1\""), std::string::npos);
  EXPECT_NE(text.find("\"done\":2"), std::string::npos);
  EXPECT_NE(text.find("\"total\":2"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"local\""), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(status_path + ".tmp"));
  std::filesystem::remove(status_path);
}

// ---- multi-process campaigns streaming status --------------------------

MultiprocessOptions st_mp_options(const std::string& scenario, std::size_t n,
                                  std::uint64_t base, std::size_t workers,
                                  const std::string& journal = "") {
  MultiprocessOptions mp;
  mp.workers = workers;
  mp.exec_argv = {"/proc/self/exe",
                  "--st-scenario", scenario,
                  "--st-trials",   std::to_string(n),
                  "--st-seed",     std::to_string(base),
                  "--threads",     "1",
                  "--status-interval-ms", "20"};
  mp.supervisor.journal_path = journal;
  mp.heartbeat_interval_ms = 20;
  mp.status_interval_ms = 20;
  mp.respawn_backoff = Backoff{10, 100, 0.0};
  return mp;
}

void expect_monotonic(const std::vector<StatusSnapshot>& snaps,
                      std::uint64_t total) {
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].total, total);
    if (i == 0) continue;
    EXPECT_GT(snaps[i].seq, snaps[i - 1].seq);
    EXPECT_GE(snaps[i].done, snaps[i - 1].done);
    EXPECT_GE(snaps[i].failed, snaps[i - 1].failed);
  }
}

TEST(MultiprocessStatusTest, CleanCampaignStreamsMonotonicStatus) {
  for (const std::size_t workers : {1u, 3u}) {
    const std::string status_path = temp_path("mp_clean.json");
    auto mp = st_mp_options("clean", 8, 300, workers);
    mp.status_path = status_path;
    std::vector<StatusSnapshot> snaps;
    mp.on_status = [&](const StatusSnapshot& s) { snaps.push_back(s); };

    const auto report =
        run_multiprocess(scenario_trials(8, 300), mp);
    ASSERT_TRUE(report.all_completed()) << "workers=" << workers;

    ASSERT_FALSE(snaps.empty());
    expect_monotonic(snaps, 8);
    const auto& last = snaps.back();
    EXPECT_EQ(last.done, 8u);
    EXPECT_EQ(last.failed, 0u);
    EXPECT_EQ(last.in_flight, 0u);
    ASSERT_EQ(last.sources.size(), workers);
    for (const auto& src : last.sources) {
      EXPECT_EQ(src.kind, StatusSource::Kind::kWorker);
      EXPECT_EQ(src.name.front(), 'w');
    }
    // Worker registries crossed the pipe and merged: every settle's
    // wall time landed in the campaign-wide histogram.
    const auto* wall = find_hist(last, "runner", "trial_wall_ms");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->count, 8u);

    const std::string text = slurp(status_path);
    EXPECT_TRUE(well_formed_json(text)) << text;
    EXPECT_NE(text.find("\"schema\":\"fourbit.status/1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"done\":8"), std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(status_path + ".tmp"));
    std::filesystem::remove(status_path);
  }
}

TEST(MultiprocessStatusTest, JournalBytesIdenticalWithAndWithoutStatus) {
  const std::string plain_stem = temp_path("mp_plain.journal");
  const std::string observed_stem = temp_path("mp_observed.journal");
  const auto plain = run_multiprocess(
      scenario_trials(6, 1300),
      st_mp_options("clean", 6, 1300, 2, plain_stem));

  auto mp = st_mp_options("clean", 6, 1300, 2, observed_stem);
  const std::string status_path = temp_path("mp_journal.json");
  mp.status_path = status_path;
  std::vector<StatusSnapshot> snaps;
  mp.on_status = [&](const StatusSnapshot& s) { snaps.push_back(s); };
  const auto observed = run_multiprocess(scenario_trials(6, 1300), mp);

  ASSERT_TRUE(plain.all_completed());
  ASSERT_TRUE(observed.all_completed());
  for (std::size_t i = 0; i < 6; ++i) {
    expect_identical(plain.results[i], observed.results[i]);
  }
  EXPECT_FALSE(slurp(plain_stem).empty());
  EXPECT_EQ(slurp(plain_stem), slurp(observed_stem));
  std::filesystem::remove(plain_stem);
  std::filesystem::remove(observed_stem);
  std::filesystem::remove(status_path);
}

TEST(MultiprocessStatusTest, WorkerDeathSurfacesLossesAndFailures) {
  const std::string status_path = temp_path("mp_segv.json");
  auto mp = st_mp_options("segv@2", 6, 400, 2);
  mp.status_path = status_path;
  std::vector<StatusSnapshot> snaps;
  mp.on_status = [&](const StatusSnapshot& s) { snaps.push_back(s); };

  const auto report = run_multiprocess(scenario_trials(6, 400), mp);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 2u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);

  ASSERT_FALSE(snaps.empty());
  expect_monotonic(snaps, 6);
  const auto& last = snaps.back();
  EXPECT_EQ(last.done, 5u);
  EXPECT_EQ(last.failed, 1u);
  EXPECT_EQ(last.in_flight, 0u);
  EXPECT_GE(last.hard_crashes, 2u);  // crashed, respawned, crashed again
  EXPECT_GE(last.worker_respawns, 1u);
  std::uint64_t losses = 0;
  for (const auto& src : last.sources) losses += src.losses;
  EXPECT_GE(losses, 1u);

  const std::string text = slurp(status_path);
  EXPECT_TRUE(well_formed_json(text)) << text;
  EXPECT_NE(text.find("\"failed\":1"), std::string::npos);
  std::filesystem::remove(status_path);
}

}  // namespace
}  // namespace fourbit::runner

int main(int argc, char** argv) {
  auto cli = fourbit::runner::consume_campaign_cli(argc, argv);
  if (cli.worker_fd >= 0) {
    fourbit::runner::st_worker_main(argc, argv, std::move(cli));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
