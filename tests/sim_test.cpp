// Tests of the discrete-event kernel: time, event queue, simulator, timer
// and the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace fourbit::sim {
namespace {

// ---- Time / Duration ---------------------------------------------------

TEST(TimeTest, DurationConversions) {
  EXPECT_EQ(Duration::from_seconds(1.5).us(), 1'500'000);
  EXPECT_EQ(Duration::from_ms(20).us(), 20'000);
  EXPECT_EQ(Duration::from_minutes(2.0).us(), 120'000'000);
  EXPECT_EQ(Duration::from_hours(1.0).us(), 3'600'000'000LL);
  EXPECT_DOUBLE_EQ(Duration::from_us(250).seconds(), 0.00025);
}

TEST(TimeTest, Arithmetic) {
  const Time t = Time::from_us(1000);
  const Duration d = Duration::from_us(500);
  EXPECT_EQ((t + d).us(), 1500);
  EXPECT_EQ((t - d).us(), 500);
  EXPECT_EQ(((t + d) - t).us(), d.us());
  EXPECT_LT(t, t + d);
}

TEST(TimeTest, DurationScaling) {
  const Duration d = Duration::from_seconds(10.0);
  EXPECT_EQ((d * 0.5).us(), 5'000'000);
  EXPECT_EQ((2.0 * d).us(), 20'000'000);
  EXPECT_EQ((d - d).us(), 0);
}

// ---- EventQueue ---------------------------------------------------------
//
// Every behavioural test runs against both implementations: the binary
// heap (reference) and the calendar queue (default). They must be
// observationally identical.

class EventQueueImplTest : public ::testing::TestWithParam<EventQueue::Impl> {
 protected:
  EventQueue make() const { return EventQueue{GetParam()}; }
};

INSTANTIATE_TEST_SUITE_P(BothImpls, EventQueueImplTest,
                         ::testing::Values(EventQueue::Impl::kHeap,
                                           EventQueue::Impl::kCalendar),
                         [](const auto& info) {
                           return info.param == EventQueue::Impl::kHeap
                                      ? "Heap"
                                      : "Calendar";
                         });

TEST_P(EventQueueImplTest, PopsInTimeOrder) {
  EventQueue q = make();
  std::vector<int> order;
  q.schedule(Time::from_us(30), [&] { order.push_back(3); });
  q.schedule(Time::from_us(10), [&] { order.push_back(1); });
  q.schedule(Time::from_us(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueImplTest, SameTimeIsFifo) {
  EventQueue q = make();
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(Time::from_us(42), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  const std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST_P(EventQueueImplTest, CancelPreventsExecution) {
  EventQueue q = make();
  bool fired = false;
  const EventId id = q.schedule(Time::from_us(5), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueImplTest, CancelIsIdempotentAndSafeOnInvalid) {
  EventQueue q = make();
  const EventId id = q.schedule(Time::from_us(5), [] {});
  q.cancel(id);
  q.cancel(id);        // double cancel
  q.cancel(EventId{});  // default handle
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueImplTest, CancelOfFiredIdIsANoOp) {
  EventQueue q = make();
  const EventId id = q.schedule(Time::from_us(1), [] {});
  q.schedule(Time::from_us(2), [] {});
  q.pop();  // fires (and frees) `id`
  EXPECT_EQ(q.size(), 1u);
  q.cancel(id);  // stale handle: generation check makes this exact no-op
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueImplTest, StaleIdDoesNotCancelRecycledSlot) {
  EventQueue q = make();
  const EventId a = q.schedule(Time::from_us(1), [] {});
  q.cancel(a);  // frees the slot
  bool fired = false;
  q.schedule(Time::from_us(2), [&] { fired = true; });  // may reuse slot
  q.cancel(a);  // stale generation: must not kill the new event
  ASSERT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(fired);
}

TEST_P(EventQueueImplTest, SizeTracksLiveEvents) {
  EventQueue q = make();
  const EventId a = q.schedule(Time::from_us(1), [] {});
  q.schedule(Time::from_us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueImplTest, NextTimeSkipsCancelled) {
  EventQueue q = make();
  const EventId a = q.schedule(Time::from_us(1), [] {});
  q.schedule(Time::from_us(9), [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time().us(), 9);
}

TEST_P(EventQueueImplTest, ClearDropsEverything) {
  EventQueue q = make();
  q.schedule(Time::from_us(1), [] {});
  q.schedule(Time::from_us(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST_P(EventQueueImplTest, WideTimeRangeStaysOrdered) {
  // Mix of microsecond-apart and hour-apart events: the calendar's
  // bucket-width tuning must never reorder across rebuilds.
  EventQueue q = make();
  std::vector<std::int64_t> times{1,          2,          3,
                                  1'000'000,  1'000'001,  3'600'000'000LL,
                                  7'200'000'000LL, 5, 999, 1'000'002};
  for (const auto t : times) q.schedule(Time::from_us(t), [] {});
  std::sort(times.begin(), times.end());
  for (const auto expected : times) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.pop().time.us(), expected);
  }
}

// The two implementations must produce identical pop sequences — same
// times, same FIFO ranks — under a randomized schedule/cancel/pop storm.
TEST(EventQueueEquivalenceTest, RandomizedOperationsMatchHeapExactly) {
  Rng rng{20260809};
  EventQueue heap{EventQueue::Impl::kHeap};
  EventQueue cal{EventQueue::Impl::kCalendar};

  // Ids diverge between implementations only in their raw encoding, so
  // track scheduled handles pairwise and cancel the same logical event
  // in both queues.
  std::vector<std::pair<EventId, EventId>> live;
  std::int64_t now_us = 0;   // pops advance the clock; schedules are >= now
  int scheduled_tag = 0;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.55) {
      // Schedule: cluster times so same-bucket and same-time collisions
      // are common (FIFO order is the hard part).
      const std::int64_t t =
          now_us + static_cast<std::int64_t>(rng.uniform_int(64));
      const int tag = scheduled_tag++;
      (void)tag;
      live.emplace_back(heap.schedule(Time::from_us(t), [] {}),
                        cal.schedule(Time::from_us(t), [] {}));
    } else if (roll < 0.70 && !live.empty()) {
      const std::size_t pick = rng.uniform_int(live.size());
      heap.cancel(live[pick].first);
      cal.cancel(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (!heap.empty()) {
      ASSERT_FALSE(cal.empty());
      ASSERT_EQ(heap.next_time().us(), cal.next_time().us());
      const auto from_heap = heap.pop();
      const auto from_cal = cal.pop();
      ASSERT_EQ(from_heap.time.us(), from_cal.time.us())
          << "diverged at step " << step;
      now_us = from_heap.time.us();
      // Remove the popped event from the live set (it is whichever
      // entry's heap id no longer cancels — cheaper: scan and drop the
      // first entry whose cancel is now a no-op is O(n); instead rely
      // on generation checks making stale cancels harmless).
    }
    ASSERT_EQ(heap.size(), cal.size()) << "size diverged at step " << step;
  }

  // Drain: full remaining sequences must match.
  while (!heap.empty()) {
    ASSERT_FALSE(cal.empty());
    const auto a = heap.pop();
    const auto b = cal.pop();
    ASSERT_EQ(a.time.us(), b.time.us());
  }
  EXPECT_TRUE(cal.empty());
}

// FIFO equivalence under same-time storms: tag every callback and check
// the fire order matches between implementations.
TEST(EventQueueEquivalenceTest, SameTimeStormFifoMatches) {
  Rng rng{7};
  std::vector<int> heap_order;
  std::vector<int> cal_order;
  for (const auto impl :
       {EventQueue::Impl::kHeap, EventQueue::Impl::kCalendar}) {
    Rng local = rng.fork("storm");
    EventQueue q{impl};
    std::vector<int>& order =
        impl == EventQueue::Impl::kHeap ? heap_order : cal_order;
    for (int i = 0; i < 512; ++i) {
      const std::int64_t t = static_cast<std::int64_t>(local.uniform_int(4));
      q.schedule(Time::from_us(t), [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop().callback();
  }
  EXPECT_EQ(heap_order, cal_order);
}

// ---- EventCallback -------------------------------------------------------

TEST(EventCallbackTest, InlineCaptureInvokes) {
  int hits = 0;
  EventCallback cb{[&hits] { ++hits; }};
  ASSERT_TRUE(cb != nullptr);
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(EventCallbackTest, OversizedCaptureFallsBackToHeap) {
  // 128 bytes of captured state exceeds the 64-byte inline buffer.
  std::array<std::uint64_t, 16> big{};
  big[0] = 41;
  big[15] = 1;
  std::uint64_t got = 0;
  EventCallback cb{[big, &got] { got = big[0] + big[15]; }};
  EventCallback moved{std::move(cb)};
  moved();
  EXPECT_EQ(got, 42u);
}

TEST(EventCallbackTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  EventCallback a{[counter] { ++*counter; }};
  EXPECT_EQ(counter.use_count(), 2);
  EventCallback b{std::move(a)};
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
  b = EventCallback{};               // destroy releases the capture
  EXPECT_EQ(counter.use_count(), 1);
}

// ---- Arena ----------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena{1024};
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 64);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
}

TEST(ArenaTest, ResetReusesBlocksWithoutGrowth) {
  Arena arena{4096};
  for (int i = 0; i < 8; ++i) arena.allocate(512, 8);
  const std::size_t reserved = arena.bytes_reserved();
  for (int round = 0; round < 4; ++round) {
    arena.reset();
    for (int i = 0; i < 8; ++i) arena.allocate(512, 8);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizeAllocationGetsOwnBlock) {
  Arena arena{256};
  void* p = arena.allocate(10'000, 16);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10'000u);
}

TEST(ArenaTest, GrowthObserverReportsReservedBytes) {
  Arena arena{1024};
  std::size_t last = 0;
  arena.set_growth_observer([&last](std::size_t bytes) { last = bytes; });
  arena.allocate(512, 8);
  EXPECT_EQ(last, arena.bytes_reserved());
}

TEST(ArenaTest, VectorWithArenaAllocatorWorks) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>{arena}};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.bytes_reserved(), 0u);
}

// ---- Simulator -----------------------------------------------------------

TEST(SimulatorTest, AdvancesTimeToEvents) {
  Simulator sim;
  Time seen;
  sim.schedule_in(Duration::from_ms(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.us(), 5000);
  EXPECT_EQ(sim.now().us(), 5000);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::from_ms(1), [&] { ++fired; });
  sim.schedule_in(Duration::from_ms(10), [&] { ++fired; });
  sim.run_until(Time::from_us(5000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().us(), 5000);  // time advances to deadline
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsAtDeadlineStillRun) {
  Simulator sim;
  bool fired = false;
  sim.schedule_in(Duration::from_ms(5), [&] { fired = true; });
  sim.run_until(Time::from_us(5000));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_in(Duration::from_ms(1), [&] {
    times.push_back(sim.now().us());
    sim.schedule_in(Duration::from_ms(1), [&] {
      times.push_back(sim.now().us());
    });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{1000, 2000}));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::from_ms(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Duration::from_ms(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_in(Duration::from_ms(i + 1), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

// ---- Timer ---------------------------------------------------------------

TEST(TimerTest, OneShotFiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.start_one_shot(Duration::from_ms(3));
  sim.run_for(Duration::from_seconds(1.0));
  EXPECT_EQ(fired, 1);
}

TEST(TimerTest, PeriodicFiresRepeatedly) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.start_periodic(Duration::from_ms(10));
  sim.run_for(Duration::from_ms(95));
  EXPECT_EQ(fired, 9);
}

TEST(TimerTest, StopCancelsPendingFiring) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.start_one_shot(Duration::from_ms(5));
  t.stop();
  sim.run_for(Duration::from_ms(50));
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.running());
}

TEST(TimerTest, RestartFromCallbackWins) {
  Simulator sim;
  std::vector<std::int64_t> fire_times;
  Timer t{sim, [&] {
            fire_times.push_back(sim.now().us());
            if (fire_times.size() == 1) {
              t.start_one_shot(Duration::from_ms(2));  // restart
            }
          }};
  t.start_periodic(Duration::from_ms(10));
  sim.run_for(Duration::from_ms(50));
  // First firing at 10ms, restarted one-shot at 12ms, then silence.
  EXPECT_EQ(fire_times, (std::vector<std::int64_t>{10'000, 12'000}));
}

TEST(TimerTest, RestartReplacesPending) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.start_one_shot(Duration::from_ms(5));
  t.start_one_shot(Duration::from_ms(20));
  sim.run_for(Duration::from_ms(10));
  EXPECT_EQ(fired, 0);
  sim.run_for(Duration::from_ms(15));
  EXPECT_EQ(fired, 1);
}

// ---- Telemetry (kernel-side surface; the full subsystem is covered by
// tests/telemetry_test.cpp) ------------------------------------------------

TEST(TelemetryTest, LevelGating) {
  Simulator sim;
  auto& telemetry = sim.telemetry();
  telemetry.set_level(TraceLevel::kOff);
  EXPECT_FALSE(telemetry.enabled(TraceLevel::kError));
  EXPECT_FALSE(telemetry.enabled(TraceLevel::kDebug));
  telemetry.set_level(TraceLevel::kInfo);
  EXPECT_TRUE(telemetry.enabled(TraceLevel::kError));
  EXPECT_TRUE(telemetry.enabled(TraceLevel::kInfo));
  EXPECT_FALSE(telemetry.enabled(TraceLevel::kDebug));
  telemetry.set_level(TraceLevel::kDebug);
  EXPECT_TRUE(telemetry.enabled(TraceLevel::kDebug));

  // A debug-level event is suppressed entirely below kDebug: no ring
  // write, no count.
  telemetry.set_level(TraceLevel::kInfo);
  telemetry.emit(EventKind::kBeaconTx, 1);
  EXPECT_EQ(telemetry.events_recorded(), 0u);
  telemetry.emit(EventKind::kDataDrop, 1, 2);
  EXPECT_EQ(telemetry.events_recorded(), 1u);
}

TEST(TelemetryTest, EventsAreStampedWithSimClock) {
  Simulator sim;
  sim.telemetry().set_level(TraceLevel::kDebug);
  sim.schedule_at(Time::from_us(1500),
                  [&] { sim.telemetry().emit(EventKind::kBeaconTx, 7); });
  sim.run_for(Duration::from_ms(10));
  const auto events = sim.telemetry().flight();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at, Time::from_us(1500));
  EXPECT_EQ(events[0].kind, EventKind::kBeaconTx);
  EXPECT_EQ(events[0].node, 7u);
}

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng r{0};
  // Must not get stuck at zero (xoshiro all-zero state would).
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (r.next_u64() != 0) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(RngTest, UniformInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng r{99};
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    counts[r.uniform_int(10)] += 1;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma for a fair die
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng r{123};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(RngTest, NormalMomentsAreRight) {
  Rng r{321};
  const int n = 200'000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsRight) {
  Rng r{555};
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable) {
  Rng root{42};
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  Rng a2 = root.fork("alpha");
  // Same label -> same stream; different labels -> different streams.
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  EXPECT_NE(a.next_u64(), b.next_u64());
  // Forking does not disturb the parent: a fresh root forked the same way
  // yields the same child stream even after other forks happened.
  Rng root2{42};
  (void)root2.fork("alpha");
  Rng b2 = root2.fork("beta");
  Rng b_fresh = root.fork("beta");
  EXPECT_EQ(b_fresh.next_u64(), b2.next_u64());
}

TEST(RngTest, IntegerForksDiffer) {
  Rng root{42};
  Rng a = root.fork(std::uint64_t{1});
  Rng b = root.fork(std::uint64_t{2});
  EXPECT_NE(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace fourbit::sim
