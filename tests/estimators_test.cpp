// Tests of the baseline estimators: broadcast-probe bidirectional ETX
// (CTP/MintRoute style) and the LQI estimator (MultiHopLQI style).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "estimators/broadcast_etx.hpp"
#include "estimators/lqi_estimator.hpp"
#include "sim/rng.hpp"

namespace fourbit::estimators {
namespace {

link::PacketPhyInfo info(bool white = true, int lqi = 108) {
  return {.white = white, .lqi = lqi};
}

// ---- BroadcastEtxEstimator ---------------------------------------------------

TEST(BroadcastEtxTest, BeaconRoundTripCarriesPayload) {
  BroadcastEtxEstimator a{NodeId{1}, BroadcastEtxConfig{}, sim::Rng{1}};
  BroadcastEtxEstimator b{NodeId{2}, BroadcastEtxConfig{}, sim::Rng{2}};
  const std::vector<std::uint8_t> payload{5, 6, 7};
  const auto wire = a.wrap_beacon(payload);
  const auto out = b.unwrap_beacon(NodeId{1}, wire, info());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(BroadcastEtxTest, EtxRequiresBothDirections) {
  // b hears a's beacons, but a never reports b in a footer -> no ETX.
  BroadcastEtxEstimator a{NodeId{1}, BroadcastEtxConfig{}, sim::Rng{1}};
  BroadcastEtxEstimator b{NodeId{2}, BroadcastEtxConfig{}, sim::Rng{2}};
  const std::vector<std::uint8_t> payload;
  for (int i = 0; i < 6; ++i) {
    (void)b.unwrap_beacon(NodeId{1}, a.wrap_beacon(payload), info());
  }
  EXPECT_TRUE(b.inbound_quality(NodeId{1}).has_value());
  EXPECT_FALSE(b.reverse_quality(NodeId{1}).has_value());
  EXPECT_FALSE(b.etx(NodeId{1}).has_value())
      << "link must be unusable without the reverse report";
}

TEST(BroadcastEtxTest, BidirectionalExchangeYieldsEtx) {
  BroadcastEtxEstimator a{NodeId{1}, BroadcastEtxConfig{}, sim::Rng{1}};
  BroadcastEtxEstimator b{NodeId{2}, BroadcastEtxConfig{}, sim::Rng{2}};
  const std::vector<std::uint8_t> payload;
  // Full exchange: each hears every beacon of the other.
  for (int i = 0; i < 8; ++i) {
    (void)b.unwrap_beacon(NodeId{1}, a.wrap_beacon(payload), info());
    (void)a.unwrap_beacon(NodeId{2}, b.wrap_beacon(payload), info());
  }
  ASSERT_TRUE(b.etx(NodeId{1}).has_value());
  // Perfect exchange in both directions: ETX ~ 1.
  EXPECT_NEAR(b.etx(NodeId{1}).value(), 1.0, 0.05);
  ASSERT_TRUE(a.etx(NodeId{2}).has_value());
  EXPECT_NEAR(a.etx(NodeId{2}).value(), 1.0, 0.05);
}

TEST(BroadcastEtxTest, LossyDirectionRaisesEtx) {
  BroadcastEtxEstimator a{NodeId{1}, BroadcastEtxConfig{}, sim::Rng{1}};
  BroadcastEtxEstimator b{NodeId{2}, BroadcastEtxConfig{}, sim::Rng{2}};
  const std::vector<std::uint8_t> payload;
  // b hears only every second beacon of a (inbound PRR 0.5); a hears all
  // of b's.
  for (int i = 0; i < 60; ++i) {
    const auto wire = a.wrap_beacon(payload);
    if (i % 2 == 0) {
      (void)b.unwrap_beacon(NodeId{1}, wire, info());
    }
    (void)a.unwrap_beacon(NodeId{2}, b.wrap_beacon(payload), info());
  }
  ASSERT_TRUE(b.etx(NodeId{1}).has_value());
  // fwd (a->b) ~0.5 measured at b; rev (b->a) ~1.0 reported by a.
  EXPECT_NEAR(b.etx(NodeId{1}).value(), 2.0, 0.4);
}

TEST(BroadcastEtxTest, AckBitIsIgnored) {
  BroadcastEtxEstimator a{NodeId{1}, BroadcastEtxConfig{}, sim::Rng{1}};
  const std::vector<std::uint8_t> payload;
  BroadcastEtxEstimator b{NodeId{2}, BroadcastEtxConfig{}, sim::Rng{2}};
  for (int i = 0; i < 8; ++i) {
    (void)b.unwrap_beacon(NodeId{1}, a.wrap_beacon(payload), info());
    (void)a.unwrap_beacon(NodeId{2}, b.wrap_beacon(payload), info());
  }
  const double before = b.etx(NodeId{1}).value();
  for (int i = 0; i < 50; ++i) b.on_unicast_result(NodeId{1}, false);
  EXPECT_DOUBLE_EQ(b.etx(NodeId{1}).value(), before)
      << "the probe-based baseline must not react to acks";
}

TEST(BroadcastEtxTest, FooterRotationEventuallyReportsEveryone) {
  BroadcastEtxConfig cfg;
  cfg.table_capacity = 10;
  cfg.footer_max = 3;
  BroadcastEtxEstimator hub{NodeId{100}, cfg, sim::Rng{1}};
  // Ten neighbors beacon to the hub.
  std::vector<std::unique_ptr<BroadcastEtxEstimator>> neighbors;
  for (std::uint16_t i = 1; i <= 10; ++i) {
    neighbors.push_back(std::make_unique<BroadcastEtxEstimator>(
        NodeId{i}, cfg, sim::Rng{i}));
  }
  const std::vector<std::uint8_t> payload;
  for (int round = 0; round < 8; ++round) {
    for (std::uint16_t i = 1; i <= 10; ++i) {
      (void)hub.unwrap_beacon(NodeId{i},
                              neighbors[i - 1]->wrap_beacon(payload), info());
    }
    // Hub beacons; with footer_max=3 it takes ~4 beacons to cover all 10.
    const auto wire = hub.wrap_beacon(payload);
    for (std::uint16_t i = 1; i <= 10; ++i) {
      (void)neighbors[i - 1]->unwrap_beacon(NodeId{100}, wire, info());
    }
  }
  int with_reverse = 0;
  for (std::uint16_t i = 1; i <= 10; ++i) {
    if (neighbors[i - 1]->reverse_quality(NodeId{100}).has_value()) {
      ++with_reverse;
    }
  }
  EXPECT_EQ(with_reverse, 10)
      << "rotation must eventually report every table entry";
}

TEST(BroadcastEtxTest, TableLimitCapsTrackedNeighbors) {
  BroadcastEtxConfig cfg;
  cfg.table_capacity = 4;
  cfg.insertion = core::InsertionPolicy::kNever;
  BroadcastEtxEstimator e{NodeId{0}, cfg, sim::Rng{1}};
  const std::vector<std::uint8_t> payload;
  BroadcastEtxEstimator peer{NodeId{1}, cfg, sim::Rng{9}};
  for (std::uint16_t i = 1; i <= 20; ++i) {
    BroadcastEtxEstimator sender{NodeId{i}, cfg, sim::Rng{i}};
    (void)e.unwrap_beacon(NodeId{i}, sender.wrap_beacon(payload), info());
  }
  EXPECT_EQ(e.table_size(), 4u);
}

TEST(BroadcastEtxTest, UnboundedTableTracksEveryone) {
  BroadcastEtxConfig cfg;
  cfg.table_capacity = 0;
  BroadcastEtxEstimator e{NodeId{0}, cfg, sim::Rng{1}};
  const std::vector<std::uint8_t> payload;
  for (std::uint16_t i = 1; i <= 50; ++i) {
    BroadcastEtxEstimator sender{NodeId{i}, cfg, sim::Rng{i}};
    (void)e.unwrap_beacon(NodeId{i}, sender.wrap_beacon(payload), info());
  }
  EXPECT_EQ(e.table_size(), 50u);
}

TEST(BroadcastEtxTest, MalformedBeaconRejected) {
  BroadcastEtxEstimator e{NodeId{0}, BroadcastEtxConfig{}, sim::Rng{1}};
  const std::vector<std::uint8_t> truncated{0, 5};  // claims 5 footer entries
  EXPECT_FALSE(e.unwrap_beacon(NodeId{1}, truncated, info()).has_value());
}

TEST(BroadcastEtxTest, PinProtectsEntry) {
  BroadcastEtxConfig cfg;
  cfg.table_capacity = 2;
  cfg.insertion = core::InsertionPolicy::kProbabilistic;
  cfg.probabilistic_insert_p = 1.0;
  BroadcastEtxEstimator e{NodeId{0}, cfg, sim::Rng{1}};
  const std::vector<std::uint8_t> payload;
  BroadcastEtxEstimator s1{NodeId{1}, cfg, sim::Rng{11}};
  (void)e.unwrap_beacon(NodeId{1}, s1.wrap_beacon(payload), info());
  EXPECT_TRUE(e.pin(NodeId{1}));
  for (std::uint16_t i = 2; i <= 30; ++i) {
    BroadcastEtxEstimator s{NodeId{i}, cfg, sim::Rng{i}};
    (void)e.unwrap_beacon(NodeId{i}, s.wrap_beacon(payload), info());
  }
  const auto n = e.neighbors();
  EXPECT_NE(std::find(n.begin(), n.end(), NodeId{1}), n.end());
}

// ---- LqiEstimator ---------------------------------------------------------------

TEST(LqiEstimatorTest, MappingMonotoneAndClamped) {
  LqiEstimator e{LqiEstimatorConfig{}, sim::Rng{1}};
  EXPECT_DOUBLE_EQ(e.lqi_to_etx(110.0), 1.0);
  EXPECT_DOUBLE_EQ(e.lqi_to_etx(200.0), 1.0);
  EXPECT_DOUBLE_EQ(e.lqi_to_etx(0.0), LqiEstimatorConfig{}.max_etx);
  double prev = 0.0;
  for (double lqi = 110.0; lqi >= 40.0; lqi -= 5.0) {
    const double etx = e.lqi_to_etx(lqi);
    EXPECT_GE(etx, prev);
    prev = etx;
  }
}

TEST(LqiEstimatorTest, BeaconLqiDrivesEtx) {
  LqiEstimator e{LqiEstimatorConfig{}, sim::Rng{1}};
  const std::vector<std::uint8_t> wire{0};
  (void)e.unwrap_beacon(NodeId{1}, wire, info(true, 108));
  ASSERT_TRUE(e.etx(NodeId{1}).has_value());
  EXPECT_NEAR(e.etx(NodeId{1}).value(), 1.0, 0.1);
  ASSERT_TRUE(e.smoothed_lqi(NodeId{1}).has_value());
  EXPECT_DOUBLE_EQ(e.smoothed_lqi(NodeId{1}).value(), 108.0);
}

TEST(LqiEstimatorTest, SmoothingBlendsReadings) {
  LqiEstimatorConfig cfg;
  cfg.lqi_history = 0.5;
  LqiEstimator e{cfg, sim::Rng{1}};
  const std::vector<std::uint8_t> wire{0};
  (void)e.unwrap_beacon(NodeId{1}, wire, info(true, 100));
  (void)e.unwrap_beacon(NodeId{1}, wire, info(true, 80));
  EXPECT_DOUBLE_EQ(e.smoothed_lqi(NodeId{1}).value(), 90.0);
}

TEST(LqiEstimatorTest, DataPacketsAlsoFeedLqi) {
  LqiEstimatorConfig cfg;
  cfg.lqi_history = 0.0;
  LqiEstimator e{cfg, sim::Rng{1}};
  e.on_data_rx(NodeId{4}, info(true, 95));
  ASSERT_TRUE(e.smoothed_lqi(NodeId{4}).has_value());
  EXPECT_DOUBLE_EQ(e.smoothed_lqi(NodeId{4}).value(), 95.0);
}

TEST(LqiEstimatorTest, AckBitDeliberatelyIgnored) {
  LqiEstimator e{LqiEstimatorConfig{}, sim::Rng{1}};
  const std::vector<std::uint8_t> wire{0};
  (void)e.unwrap_beacon(NodeId{1}, wire, info(true, 108));
  const double before = e.etx(NodeId{1}).value();
  for (int i = 0; i < 100; ++i) e.on_unicast_result(NodeId{1}, false);
  EXPECT_DOUBLE_EQ(e.etx(NodeId{1}).value(), before)
      << "MultiHopLQI has no link-layer feedback by definition";
}

TEST(LqiEstimatorTest, FullTableEvictsWorstLqi) {
  LqiEstimatorConfig cfg;
  cfg.table_capacity = 2;
  cfg.lqi_history = 0.0;
  LqiEstimator e{cfg, sim::Rng{1}};
  e.on_data_rx(NodeId{1}, info(true, 60));   // worst
  e.on_data_rx(NodeId{2}, info(true, 100));
  e.on_data_rx(NodeId{3}, info(true, 108));  // evicts node 1
  EXPECT_FALSE(e.smoothed_lqi(NodeId{1}).has_value());
  EXPECT_TRUE(e.smoothed_lqi(NodeId{2}).has_value());
  EXPECT_TRUE(e.smoothed_lqi(NodeId{3}).has_value());
}

TEST(LqiEstimatorTest, PinBlocksEviction) {
  LqiEstimatorConfig cfg;
  cfg.table_capacity = 1;
  cfg.lqi_history = 0.0;
  LqiEstimator e{cfg, sim::Rng{1}};
  e.on_data_rx(NodeId{1}, info(true, 60));
  EXPECT_TRUE(e.pin(NodeId{1}));
  e.on_data_rx(NodeId{2}, info(true, 110));
  EXPECT_TRUE(e.smoothed_lqi(NodeId{1}).has_value());
  EXPECT_FALSE(e.smoothed_lqi(NodeId{2}).has_value());
}

}  // namespace
}  // namespace fourbit::estimators
