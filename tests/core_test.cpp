// Tests of the 4B hybrid estimator: window math (the Figure 5 trace),
// table admission (white/compare supplement), the pin bit, and edge
// cases of the beacon sequence arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "sim/rng.hpp"

namespace fourbit::core {
namespace {

/// CompareProvider stub with a scripted answer and call recording.
class StubCompare final : public link::CompareProvider {
 public:
  explicit StubCompare(bool answer) : answer_(answer) {}

  bool compare_bit(NodeId candidate,
                   std::span<const std::uint8_t> payload) override {
    ++calls_;
    last_candidate_ = candidate;
    last_payload_.assign(payload.begin(), payload.end());
    return answer_;
  }

  bool answer_;
  int calls_ = 0;
  NodeId last_candidate_;
  std::vector<std::uint8_t> last_payload_;
};

link::PacketPhyInfo white_info() { return {.white = true, .lqi = 110}; }
link::PacketPhyInfo gray_info() { return {.white = false, .lqi = 80}; }

/// Sends one beacon with the given sequence number (no routing payload).
void beacon(FourBitEstimator& est, NodeId from, std::uint8_t seq,
            const link::PacketPhyInfo& info = white_info()) {
  const std::vector<std::uint8_t> bytes{seq};
  ASSERT_TRUE(est.unwrap_beacon(from, bytes, info).has_value());
}

// ---- Figure 5 trace ------------------------------------------------------

TEST(FourBitTest, Figure5HybridTrace) {
  FourBitConfig cfg;  // ku=5, kb=2, inner 2/3, outer 1/2
  FourBitEstimator est{cfg, sim::Rng{1}};
  const NodeId n{1};

  beacon(est, n, 0);
  beacon(est, n, 1);  // window 2/2 -> PRR 1.0
  EXPECT_NEAR(est.beacon_quality(n).value(), 1.0, 1e-9);
  EXPECT_NEAR(est.etx(n).value(), 1.0, 1e-9);

  for (int i = 0; i < 5; ++i) est.on_unicast_result(n, true);  // 5/5
  EXPECT_NEAR(est.etx(n).value(), 1.0, 1e-9);

  beacon(est, n, 3);  // 1 of 2 expected -> PRR 0.5
  EXPECT_NEAR(est.beacon_quality(n).value(), 0.833333, 1e-5);
  EXPECT_NEAR(est.etx(n).value(), 1.1, 1e-5);  // sample 1.2 blended

  for (int i = 0; i < 4; ++i) est.on_unicast_result(n, true);  // 4/5
  est.on_unicast_result(n, false);
  EXPECT_NEAR(est.etx(n).value(), 1.175, 1e-5);

  est.on_unicast_result(n, true);  // 1/5 -> sample 5.0
  for (int i = 0; i < 4; ++i) est.on_unicast_result(n, false);
  EXPECT_NEAR(est.etx(n).value(), 3.0875, 1e-5);

  beacon(est, n, 5);  // 1/2 again
  EXPECT_NEAR(est.beacon_quality(n).value(), 0.722222, 1e-5);
  EXPECT_NEAR(est.etx(n).value(), 2.23599, 1e-4);

  for (int i = 0; i < 4; ++i) est.on_unicast_result(n, true);  // 4/5
  est.on_unicast_result(n, false);
  EXPECT_NEAR(est.etx(n).value(), 1.74299, 1e-4);

  // 0/5 window; the running failure streak spans windows and reaches 6.
  for (int i = 0; i < 5; ++i) est.on_unicast_result(n, false);
  EXPECT_NEAR(est.etx(n).value(), 3.8715, 1e-3);
}

// ---- beacon wrapping -------------------------------------------------------

TEST(FourBitTest, WrapBeaconPrependsIncrementingSeq) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  const std::vector<std::uint8_t> payload{9, 8, 7};
  const auto b0 = est.wrap_beacon(payload);
  const auto b1 = est.wrap_beacon(payload);
  ASSERT_EQ(b0.size(), 4u);
  EXPECT_EQ(b1[0], static_cast<std::uint8_t>(b0[0] + 1));
  EXPECT_EQ(b0[1], 9);
  EXPECT_EQ(b0[3], 7);
}

TEST(FourBitTest, UnwrapReturnsEmbeddedPayload) {
  FourBitEstimator tx{FourBitConfig{}, sim::Rng{1}};
  FourBitEstimator rx{FourBitConfig{}, sim::Rng{2}};
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const auto wire = tx.wrap_beacon(payload);
  const auto out = rx.unwrap_beacon(NodeId{5}, wire, white_info());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(FourBitTest, UnwrapEmptyIsMalformed) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  const std::vector<std::uint8_t> empty;
  EXPECT_FALSE(est.unwrap_beacon(NodeId{1}, empty, white_info()).has_value());
}

// ---- admission --------------------------------------------------------------

TEST(FourBitTest, FreeSlotAdmitsAnyBeacon) {
  FourBitConfig cfg;
  cfg.table_capacity = 2;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 0, gray_info());  // white NOT required with room
  EXPECT_EQ(est.table_size(), 1u);
  EXPECT_TRUE(est.etx(NodeId{1}).has_value());  // bootstrap estimate
}

TEST(FourBitTest, FullTableWhiteCompareAdmits) {
  FourBitConfig cfg;
  cfg.table_capacity = 2;
  cfg.insertion = InsertionPolicy::kWhiteCompare;
  cfg.probabilistic_insert_p = 0.0;  // isolate the fast path
  FourBitEstimator est{cfg, sim::Rng{1}};
  StubCompare compare{true};
  est.set_compare_provider(&compare);

  beacon(est, NodeId{1}, 0);
  beacon(est, NodeId{2}, 0);
  ASSERT_EQ(est.table_size(), 2u);

  beacon(est, NodeId{3}, 0);  // white + compare true -> admitted
  EXPECT_EQ(est.table_size(), 2u);
  EXPECT_TRUE(est.etx(NodeId{3}).has_value());
  EXPECT_EQ(compare.calls_, 1);
  EXPECT_EQ(compare.last_candidate_, NodeId{3});
}

TEST(FourBitTest, FullTableWithoutWhiteUsesFallbackOnly) {
  FourBitConfig cfg;
  cfg.table_capacity = 2;
  cfg.insertion = InsertionPolicy::kWhiteCompare;
  cfg.probabilistic_insert_p = 0.0;
  FourBitEstimator est{cfg, sim::Rng{1}};
  StubCompare compare{true};
  est.set_compare_provider(&compare);

  beacon(est, NodeId{1}, 0);
  beacon(est, NodeId{2}, 0);
  beacon(est, NodeId{3}, 0, gray_info());  // no white bit, fallback p=0
  EXPECT_EQ(est.table_size(), 2u);
  EXPECT_FALSE(est.etx(NodeId{3}).has_value());
  EXPECT_EQ(compare.calls_, 0);  // compare is only asked on white packets
}

TEST(FourBitTest, CompareFalseFallsBackToProbabilistic) {
  FourBitConfig cfg;
  cfg.table_capacity = 1;
  cfg.insertion = InsertionPolicy::kWhiteCompare;
  cfg.probabilistic_insert_p = 1.0;  // fallback always admits
  FourBitEstimator est{cfg, sim::Rng{1}};
  StubCompare compare{false};
  est.set_compare_provider(&compare);

  beacon(est, NodeId{1}, 0);
  beacon(est, NodeId{2}, 0);  // compare says no, but Woo fallback says yes
  EXPECT_EQ(est.table_size(), 1u);
  EXPECT_TRUE(est.etx(NodeId{2}).has_value());
  EXPECT_EQ(compare.calls_, 1);
}

TEST(FourBitTest, AllPinnedBlocksAdmission) {
  FourBitConfig cfg;
  cfg.table_capacity = 2;
  cfg.probabilistic_insert_p = 1.0;
  FourBitEstimator est{cfg, sim::Rng{1}};
  StubCompare compare{true};
  est.set_compare_provider(&compare);

  beacon(est, NodeId{1}, 0);
  beacon(est, NodeId{2}, 0);
  EXPECT_TRUE(est.pin(NodeId{1}));
  EXPECT_TRUE(est.pin(NodeId{2}));
  beacon(est, NodeId{3}, 0);
  EXPECT_EQ(est.table_size(), 2u);
  EXPECT_FALSE(est.etx(NodeId{3}).has_value());
}

TEST(FourBitTest, PinnedEntrySurvivesChurn) {
  FourBitConfig cfg;
  cfg.table_capacity = 3;
  cfg.probabilistic_insert_p = 1.0;
  FourBitEstimator est{cfg, sim::Rng{1}};
  StubCompare compare{true};
  est.set_compare_provider(&compare);

  beacon(est, NodeId{1}, 0);
  EXPECT_TRUE(est.pin(NodeId{1}));
  for (std::uint16_t i = 2; i < 40; ++i) {
    beacon(est, NodeId{i}, 0);
  }
  EXPECT_TRUE(est.etx(NodeId{1}).has_value()) << "pinned entry evicted";
  EXPECT_EQ(est.table_size(), 3u);
}

TEST(FourBitTest, NeverPolicyOnlyFillsFreeSlots) {
  FourBitConfig cfg;
  cfg.table_capacity = 1;
  cfg.insertion = InsertionPolicy::kNever;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  beacon(est, NodeId{2}, 0);
  EXPECT_EQ(est.table_size(), 1u);
  EXPECT_FALSE(est.etx(NodeId{2}).has_value());
}

// ---- ack-bit edge cases --------------------------------------------------------

TEST(FourBitTest, AckForUnknownNodeIgnored) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  est.on_unicast_result(NodeId{9}, true);  // must not crash or insert
  EXPECT_EQ(est.table_size(), 0u);
  EXPECT_FALSE(est.etx(NodeId{9}).has_value());
}

TEST(FourBitTest, EtxClampedAtMaximum) {
  FourBitConfig cfg;
  cfg.max_etx_sample = 16.0;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  for (int i = 0; i < 200; ++i) est.on_unicast_result(NodeId{1}, false);
  EXPECT_LE(est.etx(NodeId{1}).value(), 16.0);
  EXPECT_GT(est.etx(NodeId{1}).value(), 8.0);
}

TEST(FourBitTest, EtxNeverBelowOne) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  for (int i = 0; i < 100; ++i) est.on_unicast_result(NodeId{1}, true);
  EXPECT_GE(est.etx(NodeId{1}).value(), 1.0);
}

TEST(FourBitTest, RecoveryAfterFailureStreak) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  for (int i = 0; i < 20; ++i) est.on_unicast_result(NodeId{1}, false);
  const double broken = est.etx(NodeId{1}).value();
  for (int i = 0; i < 40; ++i) est.on_unicast_result(NodeId{1}, true);
  const double recovered = est.etx(NodeId{1}).value();
  EXPECT_GT(broken, 4.0);
  EXPECT_LT(recovered, 1.2);
}

// ---- beacon sequence arithmetic ---------------------------------------------------

TEST(FourBitTest, SequenceWrapAroundCountsGap) {
  FourBitConfig cfg;
  cfg.beacon_window = 8;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 250);
  beacon(est, NodeId{1}, 2);  // gap of 8 across the wrap
  // window_expected reached 1 + 8 = 9 >= 8 -> one sample of 2/9.
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(),
              2.0 / 3.0 * 1.0 + 1.0 / 3.0 * (2.0 / 9.0), 1e-9);
}

TEST(FourBitTest, DuplicateSequenceIgnored) {
  // A replayed/duplicated beacon must not count as a reception: bumping
  // both received and expected would inflate the measured PRR on links
  // that also lose beacons.
  FourBitConfig cfg;
  cfg.beacon_window = 4;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);  // admission seeds the window at 1/1
  beacon(est, NodeId{1}, 2);  // gap 2 -> window 2/3
  beacon(est, NodeId{1}, 2);  // exact duplicate: ignored
  beacon(est, NodeId{1}, 2);  // ignored again
  // Still bootstrap-only: the duplicates must not have completed a window.
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(), 1.0, 1e-9);
  beacon(est, NodeId{1}, 3);  // window 3/4 -> sample 0.75
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(),
              2.0 / 3.0 * 1.0 + 1.0 / 3.0 * 0.75, 1e-9);
}

TEST(FourBitTest, DuplicateOfFirstBeaconIgnored) {
  FourBitConfig cfg;
  cfg.beacon_window = 2;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 5);
  beacon(est, NodeId{1}, 5);  // replay of the admitting beacon: window 1/1
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(), 1.0, 1e-9);
  beacon(est, NodeId{1}, 6);  // completes 2/2 -> PRR 1.0
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(), 1.0, 1e-9);
}

TEST(FourBitTest, DuplicateAfterWrapIgnored) {
  FourBitConfig cfg;
  cfg.beacon_window = 8;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 254);
  beacon(est, NodeId{1}, 2);  // gap 4 across the wrap -> window 2/5
  beacon(est, NodeId{1}, 2);  // duplicate just past the wrap: ignored
  beacon(est, NodeId{1}, 5);  // gap 3 -> window 3/8 -> sample 3/8
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(),
              2.0 / 3.0 * 1.0 + 1.0 / 3.0 * (3.0 / 8.0), 1e-9);
}

TEST(FourBitTest, LossyBeaconsConvergeTowardTruePrr) {
  FourBitConfig cfg;
  cfg.beacon_window = 4;
  FourBitEstimator est{cfg, sim::Rng{1}};
  // Receive every other beacon: long-run inbound PRR 0.5.
  std::uint8_t seq = 0;
  beacon(est, NodeId{1}, seq);
  for (int i = 0; i < 200; ++i) {
    seq = static_cast<std::uint8_t>(seq + 2);
    beacon(est, NodeId{1}, seq);
  }
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(), 0.5, 0.05);
  // With no data traffic, hybrid ETX tracks the beacon stream: ~2.
  EXPECT_NEAR(est.etx(NodeId{1}).value(), 2.0, 0.25);
}

// ---- misc -----------------------------------------------------------------------

TEST(FourBitTest, NeighborsListsTrackedNodes) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  beacon(est, NodeId{3}, 0);
  beacon(est, NodeId{7}, 0);
  const auto n = est.neighbors();
  EXPECT_EQ(n.size(), 2u);
  EXPECT_NE(std::find(n.begin(), n.end(), NodeId{3}), n.end());
  EXPECT_NE(std::find(n.begin(), n.end(), NodeId{7}), n.end());
}

TEST(FourBitTest, RemoveDropsUnpinnedOnly) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  beacon(est, NodeId{2}, 0);
  EXPECT_TRUE(est.pin(NodeId{1}));
  EXPECT_FALSE(est.remove(NodeId{1}));  // pinned: refused, reported
  EXPECT_TRUE(est.remove(NodeId{2}));
  EXPECT_TRUE(est.etx(NodeId{1}).has_value());
  EXPECT_FALSE(est.etx(NodeId{2}).has_value());
}

TEST(FourBitTest, RemoveOfAbsentNodeSucceeds) {
  // "Removed or never present" both mean no stale entry remains.
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  EXPECT_TRUE(est.remove(NodeId{9}));
}

TEST(FourBitTest, ClearPinsReleasesAll) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  EXPECT_TRUE(est.pin(NodeId{1}));
  est.clear_pins();
  est.remove(NodeId{1});
  EXPECT_EQ(est.table_size(), 0u);
}

// ---- beacon sequence resets (neighbor reboot) ----------------------------

TEST(FourBitTest, WhiteSeqResetDoesNotInflateExpected) {
  // A neighbor reboots and restarts its beacon sequence at 0. Without
  // the reset heuristic the mod-256 gap (here 55) would be charged as 55
  // lost beacons, cratering the estimate of a link that works fine.
  FourBitConfig cfg;
  cfg.beacon_window = 4;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 200);
  beacon(est, NodeId{1}, 201);
  beacon(est, NodeId{1}, 0);  // reset; white channel vouches for the link
  beacon(est, NodeId{1}, 1);  // completes 4/4
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(), 1.0, 1e-9);
  EXPECT_EQ(est.seq_resets(), 1u);
}

TEST(FourBitTest, SeqResetGapZeroDisablesHeuristic) {
  FourBitConfig cfg;
  cfg.beacon_window = 4;
  cfg.seq_reset_gap = 0;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 200);
  beacon(est, NodeId{1}, 201);
  beacon(est, NodeId{1}, 0);  // charged as a genuine 55-beacon gap: 3/57
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(),
              2.0 / 3.0 * 1.0 + 1.0 / 3.0 * (3.0 / 57.0), 1e-9);
  EXPECT_EQ(est.seq_resets(), 0u);
}

TEST(FourBitTest, GraySeqResetChargeIsCapped) {
  // Same reset, but nothing vouches for the link (not white, no acks):
  // charge the capped gap, not the full wrap distance.
  FourBitConfig cfg;
  cfg.beacon_window = 4;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 200, gray_info());
  beacon(est, NodeId{1}, 201, gray_info());
  beacon(est, NodeId{1}, 0, gray_info());  // 3/(2 + 16) = 3/18
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(),
              2.0 / 3.0 * 1.0 + 1.0 / 3.0 * (3.0 / 18.0), 1e-9);
  EXPECT_EQ(est.seq_resets(), 0u);
}

TEST(FourBitTest, AckedLinkSeqResetForgiven) {
  // Gray beacons, but recent unicast acks prove the link is alive — the
  // reset is forgiven like a white one.
  FourBitConfig cfg;
  cfg.beacon_window = 4;
  FourBitEstimator est{cfg, sim::Rng{1}};
  beacon(est, NodeId{1}, 200, gray_info());
  est.on_unicast_result(NodeId{1}, true);
  beacon(est, NodeId{1}, 201, gray_info());
  beacon(est, NodeId{1}, 0, gray_info());
  beacon(est, NodeId{1}, 1, gray_info());  // completes 4/4
  EXPECT_NEAR(est.beacon_quality(NodeId{1}).value(), 1.0, 1e-9);
  EXPECT_EQ(est.seq_resets(), 1u);
}

TEST(FourBitTest, ResetWipesTableAndRestartsSequence) {
  FourBitEstimator est{FourBitConfig{}, sim::Rng{1}};
  beacon(est, NodeId{1}, 0);
  EXPECT_TRUE(est.pin(NodeId{1}));
  const auto before = est.wrap_beacon({});
  est.reset();
  EXPECT_EQ(est.table_size(), 0u);
  EXPECT_TRUE(est.neighbors().empty());
  // The beacon sequence restarts from scratch, like a real reboot.
  const auto after = est.wrap_beacon({});
  EXPECT_EQ(after[0], before[0]);
}

TEST(FourBitTest, CompareReceivesRoutingPayload) {
  FourBitConfig cfg;
  cfg.table_capacity = 1;
  FourBitEstimator est{cfg, sim::Rng{1}};
  StubCompare compare{true};
  est.set_compare_provider(&compare);
  beacon(est, NodeId{1}, 0);
  const std::vector<std::uint8_t> wire{0, 0xAA, 0xBB};
  (void)est.unwrap_beacon(NodeId{2}, wire, white_info());
  ASSERT_EQ(compare.calls_, 1);
  const std::vector<std::uint8_t> expected{0xAA, 0xBB};
  EXPECT_EQ(compare.last_payload_, expected);
}

}  // namespace
}  // namespace fourbit::core
