// Tests of the network layer: wire formats, duplicate cache, routing
// engine (parent selection, compare/pin bits, Trickle behaviour) and the
// forwarding engine (retransmission, the ack bit, loop signals).
//
// The routing/forwarding engines are tested against a scripted fake
// estimator and a captured data sender, so every behaviour is exercised
// without a radio underneath.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/config.hpp"
#include "net/forwarding_engine.hpp"
#include "net/packets.hpp"
#include "net/routing_engine.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace fourbit::net {
namespace {

// ---- wire formats --------------------------------------------------------

TEST(PacketsTest, BeaconRoundTrip) {
  RoutingBeacon b;
  b.parent = NodeId{17};
  b.path_etx = 3.25;
  b.pull = true;
  const auto decoded = RoutingBeacon::decode(b.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->parent, NodeId{17});
  EXPECT_DOUBLE_EQ(decoded->path_etx, 3.25);
  EXPECT_TRUE(decoded->pull);
}

TEST(PacketsTest, BeaconPullDefaultsFalse) {
  RoutingBeacon b;
  b.parent = NodeId{1};
  b.path_etx = 0.0;
  const auto decoded = RoutingBeacon::decode(b.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->pull);
}

TEST(PacketsTest, BeaconTruncatedRejected) {
  const std::vector<std::uint8_t> bytes{0x00, 0x01};
  EXPECT_FALSE(RoutingBeacon::decode(bytes).has_value());
}

TEST(PacketsTest, EtxQuantization) {
  EXPECT_DOUBLE_EQ(dequantize_etx(quantize_etx(1.0)), 1.0);
  EXPECT_NEAR(dequantize_etx(quantize_etx(3.14)), 3.14, 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(dequantize_etx(quantize_etx(0.0)), 0.0);
  // Saturates instead of wrapping.
  EXPECT_GT(dequantize_etx(quantize_etx(1e9)), 4000.0);
}

TEST(PacketsTest, DataHeaderRoundTrip) {
  DataHeader h;
  h.origin = NodeId{300};
  h.seq = 4242;
  h.thl = 7;
  h.sender_path_etx = 12.5;
  const std::vector<std::uint8_t> payload{9, 9, 9};
  const auto decoded = decode_data(h.encode(payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.origin, NodeId{300});
  EXPECT_EQ(decoded->header.seq, 4242);
  EXPECT_EQ(decoded->header.thl, 7);
  EXPECT_DOUBLE_EQ(decoded->header.sender_path_etx, 12.5);
  EXPECT_EQ(decoded->app_payload, payload);
}

TEST(PacketsTest, DataHeaderTruncatedRejected) {
  const std::vector<std::uint8_t> bytes{1, 2, 3};
  EXPECT_FALSE(decode_data(bytes).has_value());
}

// ---- DupCache -----------------------------------------------------------------

TEST(DupCacheTest, DetectsDuplicates) {
  DupCache cache{8};
  EXPECT_FALSE(cache.check_and_insert(NodeId{1}, 100));
  EXPECT_TRUE(cache.check_and_insert(NodeId{1}, 100));
  EXPECT_FALSE(cache.check_and_insert(NodeId{1}, 101));
  EXPECT_FALSE(cache.check_and_insert(NodeId{2}, 100));
}

TEST(DupCacheTest, EvictsOldestAtCapacity) {
  DupCache cache{2};
  (void)cache.check_and_insert(NodeId{1}, 1);
  (void)cache.check_and_insert(NodeId{1}, 2);
  (void)cache.check_and_insert(NodeId{1}, 3);  // evicts (1,1)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.check_and_insert(NodeId{1}, 1));  // forgotten
}

// ---- fakes -----------------------------------------------------------------------

/// Scripted estimator: ETX per neighbor set by the test; records pins and
/// ack-bit reports.
class FakeEstimator final : public link::LinkEstimator {
 public:
  std::vector<std::uint8_t> wrap_beacon(
      std::span<const std::uint8_t> p) override {
    return {p.begin(), p.end()};
  }
  std::optional<std::vector<std::uint8_t>> unwrap_beacon(
      NodeId, std::span<const std::uint8_t> bytes,
      const link::PacketPhyInfo&) override {
    return std::vector<std::uint8_t>{bytes.begin(), bytes.end()};
  }
  void on_unicast_result(NodeId to, bool acked) override {
    ack_reports.emplace_back(to, acked);
  }
  bool pin(NodeId n) override {
    if (!etx_map.contains(n)) return false;
    pinned.insert(n);
    return true;
  }
  void unpin(NodeId n) override { pinned.erase(n); }
  void clear_pins() override { pinned.clear(); }
  std::optional<double> etx(NodeId n) const override {
    const auto it = etx_map.find(n);
    if (it == etx_map.end()) return std::nullopt;
    return it->second;
  }
  std::vector<NodeId> neighbors() const override {
    std::vector<NodeId> out;
    for (const auto& [n, e] : etx_map) out.push_back(n);
    return out;
  }
  bool remove(NodeId n) override {
    if (pinned.contains(n)) return false;  // real tables refuse pinned
    etx_map.erase(n);
    return true;
  }
  void set_compare_provider(link::CompareProvider* p) override {
    compare = p;
  }

  std::map<NodeId, double> etx_map;
  std::set<NodeId> pinned;
  std::vector<std::pair<NodeId, bool>> ack_reports;
  link::CompareProvider* compare = nullptr;
};

std::vector<std::uint8_t> beacon_from(NodeId parent, double cost,
                                      bool pull = false) {
  RoutingBeacon b;
  b.parent = parent;
  b.path_etx = cost;
  b.pull = pull;
  return b.encode();
}

// ---- RoutingEngine -------------------------------------------------------------

class RoutingFixture : public ::testing::Test {
 protected:
  RoutingFixture()
      : routing_(sim_, NodeId{10}, false, estimator_, CollectionConfig{},
                 sim::Rng{1}) {
    routing_.set_beacon_sender(
        [this](std::vector<std::uint8_t> payload) {
          sent_beacons_.push_back(std::move(payload));
        });
    routing_.start();
  }

  sim::Simulator sim_;
  FakeEstimator estimator_;
  RoutingEngine routing_;
  std::vector<std::vector<std::uint8_t>> sent_beacons_;
};

TEST_F(RoutingFixture, NoRouteInitially) {
  EXPECT_FALSE(routing_.has_route());
  EXPECT_GE(routing_.path_etx(), CollectionConfig{}.max_path_etx);
}

TEST_F(RoutingFixture, AdoptsBestCostParent) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  estimator_.etx_map[NodeId{2}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 2.0));
  routing_.on_beacon(NodeId{2}, beacon_from(NodeId{99}, 0.5));
  EXPECT_TRUE(routing_.has_route());
  EXPECT_EQ(routing_.parent(), NodeId{2});
  EXPECT_NEAR(routing_.path_etx(), 1.5, 1e-9);
}

TEST_F(RoutingFixture, PinsCurrentParent) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 2.0));
  EXPECT_TRUE(estimator_.pinned.contains(NodeId{1}));
  // A far better parent appears (beats hysteresis): pin moves.
  estimator_.etx_map[NodeId{2}] = 1.0;
  routing_.on_beacon(NodeId{2}, beacon_from(NodeId{99}, 0.0));
  EXPECT_EQ(routing_.parent(), NodeId{2});
  EXPECT_TRUE(estimator_.pinned.contains(NodeId{2}));
  EXPECT_FALSE(estimator_.pinned.contains(NodeId{1}));
}

TEST_F(RoutingFixture, HysteresisKeepsCurrentParent) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  estimator_.etx_map[NodeId{2}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 2.0));
  ASSERT_EQ(routing_.parent(), NodeId{1});
  // Candidate is better, but not by the switch threshold.
  routing_.on_beacon(NodeId{2}, beacon_from(NodeId{99}, 1.8));
  EXPECT_EQ(routing_.parent(), NodeId{1});
  // Now decisively better: switch.
  routing_.on_beacon(NodeId{2}, beacon_from(NodeId{99}, 0.2));
  EXPECT_EQ(routing_.parent(), NodeId{2});
}

TEST_F(RoutingFixture, IgnoresNeighborRoutingThroughUs) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{10}, 1.0));  // child!
  EXPECT_FALSE(routing_.has_route());
}

TEST_F(RoutingFixture, IgnoresRoutelessNeighbors) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1},
                     beacon_from(NodeId{99}, CollectionConfig{}.max_path_etx));
  EXPECT_FALSE(routing_.has_route());
}

TEST_F(RoutingFixture, IgnoresNeighborsWithoutLinkEstimate) {
  // Route info exists but the estimator does not track the node.
  routing_.on_beacon(NodeId{5}, beacon_from(NodeId{99}, 0.5));
  EXPECT_FALSE(routing_.has_route());
}

TEST_F(RoutingFixture, RootAdvertisesZero) {
  FakeEstimator est;
  RoutingEngine root{sim_, NodeId{0}, true, est, CollectionConfig{},
                     sim::Rng{2}};
  EXPECT_TRUE(root.is_root());
  EXPECT_TRUE(root.has_route());
  EXPECT_DOUBLE_EQ(root.path_etx(), 0.0);
}

TEST_F(RoutingFixture, BeaconsCarryCostAndPull) {
  sim_.run_for(sim::Duration::from_seconds(2.0));
  ASSERT_FALSE(sent_beacons_.empty());
  const auto b = RoutingBeacon::decode(sent_beacons_.back());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->pull) << "routeless nodes must set the pull bit";

  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 1.0));
  sent_beacons_.clear();
  sim_.run_for(sim::Duration::from_seconds(10.0));
  ASSERT_FALSE(sent_beacons_.empty());
  const auto b2 = RoutingBeacon::decode(sent_beacons_.back());
  ASSERT_TRUE(b2.has_value());
  EXPECT_FALSE(b2->pull);
  EXPECT_NEAR(b2->path_etx, 2.0, 0.1);
}

TEST_F(RoutingFixture, TrickleSlowsWhenStable) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 1.0));
  sim_.run_for(sim::Duration::from_seconds(60.0));
  const auto early = sent_beacons_.size();
  sim_.run_for(sim::Duration::from_seconds(60.0));
  const auto late = sent_beacons_.size() - early;
  EXPECT_LT(late, early) << "beacon rate must decay when the route is stable";
}

TEST_F(RoutingFixture, CompareBitTrueForBetterRoute) {
  estimator_.etx_map[NodeId{1}] = 2.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 3.0));  // worst = 5
  EXPECT_TRUE(routing_.compare_bit(NodeId{7}, beacon_from(NodeId{99}, 1.0)));
  EXPECT_FALSE(routing_.compare_bit(NodeId{7}, beacon_from(NodeId{99}, 9.0)));
}

TEST_F(RoutingFixture, CompareBitFalseForRoutelessCandidate) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 1.0));
  EXPECT_FALSE(routing_.compare_bit(
      NodeId{7}, beacon_from(NodeId{99}, CollectionConfig{}.max_path_etx)));
}

TEST_F(RoutingFixture, CompareBitFalseForOurChild) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 1.0));
  EXPECT_FALSE(routing_.compare_bit(NodeId{7}, beacon_from(NodeId{10}, 0.5)));
}

TEST_F(RoutingFixture, CompareBitTrueWhenTableMostlyUseless) {
  // Estimator tracks nodes the routing layer knows nothing about.
  estimator_.etx_map[NodeId{1}] = 1.0;
  estimator_.etx_map[NodeId{2}] = 1.0;
  estimator_.etx_map[NodeId{3}] = 1.0;
  EXPECT_TRUE(routing_.compare_bit(NodeId{7}, beacon_from(NodeId{99}, 5.0)));
}

TEST_F(RoutingFixture, CompareBitFalseOnMalformedPayload) {
  const std::vector<std::uint8_t> garbage{0x01};
  EXPECT_FALSE(routing_.compare_bit(NodeId{7}, garbage));
}

TEST_F(RoutingFixture, StaleCandidateRoutesExpire) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  estimator_.etx_map[NodeId{2}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 1.0));
  ASSERT_EQ(routing_.parent(), NodeId{1});
  routing_.on_beacon(NodeId{2}, beacon_from(NodeId{99}, 1.2));
  // Let node 2's advertisement go stale, then break the parent.
  sim_.run_for(CollectionConfig{}.route_expiry +
               sim::Duration::from_seconds(5.0));
  estimator_.etx_map.erase(NodeId{1});
  routing_.on_delivery_failure(NodeId{1});
  // Node 2's route info is stale -> not used; no route remains.
  EXPECT_FALSE(routing_.has_route());
}

TEST_F(RoutingFixture, ParentExemptFromExpiry) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 1.0));
  ASSERT_TRUE(routing_.has_route());
  sim_.run_for(CollectionConfig{}.route_expiry +
               sim::Duration::from_seconds(60.0));
  EXPECT_TRUE(routing_.has_route())
      << "the current parent must not expire from silence alone";
}

// ---- dead-parent eviction ------------------------------------------------

TEST_F(RoutingFixture, DeadPinnedParentEvictedAfterFailureStreak) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  estimator_.etx_map[NodeId{2}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 0.0));
  routing_.on_beacon(NodeId{2}, beacon_from(NodeId{99}, 0.5));
  ASSERT_EQ(routing_.parent(), NodeId{1});
  ASSERT_TRUE(estimator_.pinned.contains(NodeId{1}));

  // Node 1 dies silently: every retransmission budget toward it burns.
  const int evict_after = CollectionConfig{}.parent_evict_failures;
  for (int i = 0; i < evict_after; ++i) {
    routing_.on_delivery_failure(NodeId{1});
  }
  EXPECT_EQ(routing_.parent_evictions(), 1u);
  EXPECT_FALSE(estimator_.pinned.contains(NodeId{1}))
      << "the pin must not outlive the eviction";
  EXPECT_FALSE(estimator_.etx_map.contains(NodeId{1}));
  EXPECT_EQ(routing_.parent(), NodeId{2})
      << "the next-best candidate takes over";
}

TEST_F(RoutingFixture, DeliverySuccessResetsFailureStreak) {
  estimator_.etx_map[NodeId{1}] = 1.0;
  routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 0.0));
  ASSERT_EQ(routing_.parent(), NodeId{1});
  const int evict_after = CollectionConfig{}.parent_evict_failures;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < evict_after - 1; ++i) {
      routing_.on_delivery_failure(NodeId{1});
    }
    routing_.on_delivery_success(NodeId{1});  // streak broken
  }
  EXPECT_EQ(routing_.parent_evictions(), 0u);
  EXPECT_EQ(routing_.parent(), NodeId{1});
}

TEST(RoutingEvictionTest, EvictionUnpinsCountsRefusalAndReportsLoss) {
  sim::Simulator sim;
  FakeEstimator est;
  stats::Metrics metrics;
  RoutingEngine routing{sim,     NodeId{10},  false,       est,
                        CollectionConfig{}, sim::Rng{1}, &metrics};
  routing.set_beacon_sender([](std::vector<std::uint8_t>) {});
  routing.start();
  est.etx_map[NodeId{1}] = 1.0;
  routing.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 0.0));
  ASSERT_TRUE(est.pinned.contains(NodeId{1}));

  for (int i = 0; i < CollectionConfig{}.parent_evict_failures; ++i) {
    routing.on_delivery_failure(NodeId{1});
  }
  // The pinned entry refused removal once, was unpinned, then removed.
  EXPECT_EQ(metrics.pin_refusals(), 1u);
  EXPECT_FALSE(est.pinned.contains(NodeId{1}));
  EXPECT_FALSE(est.etx_map.contains(NodeId{1}));
  // Sole candidate gone: the node is routeless, and says so.
  EXPECT_FALSE(routing.has_route());
  EXPECT_EQ(metrics.route_losses(), 1u);
}

TEST(RoutingEvictionTest, EvictionDisabledKeepsDeadParent) {
  // MultiHopLQI-style config: no datapath feedback into routing, so a
  // dead pinned parent wedges the node (the contrast the paper draws).
  sim::Simulator sim;
  FakeEstimator est;
  CollectionConfig config;
  config.parent_evict_failures = 0;
  RoutingEngine routing{sim, NodeId{10}, false, est, config, sim::Rng{1}};
  routing.set_beacon_sender([](std::vector<std::uint8_t>) {});
  routing.start();
  est.etx_map[NodeId{1}] = 1.0;
  routing.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 0.0));
  for (int i = 0; i < 20; ++i) routing.on_delivery_failure(NodeId{1});
  EXPECT_EQ(routing.parent_evictions(), 0u);
  EXPECT_EQ(routing.parent(), NodeId{1});
  EXPECT_TRUE(est.pinned.contains(NodeId{1}));
}

// ---- ForwardingEngine -------------------------------------------------------------

class ForwardingFixture : public ::testing::Test {
 protected:
  ForwardingFixture()
      : routing_(sim_, NodeId{10}, false, estimator_, config_, sim::Rng{1}),
        forwarding_(sim_, NodeId{10}, routing_, estimator_, config_,
                    &metrics_, sim::Rng{2}) {
    routing_.set_beacon_sender([](std::vector<std::uint8_t>) {});
    routing_.start();
    forwarding_.set_data_sender(
        [this](NodeId dst, std::vector<std::uint8_t> payload,
               std::function<void(bool)> done) {
          sends_.push_back({dst, std::move(payload)});
          pending_done_.push_back(std::move(done));
        });
    // Give the node a route: parent 1 with cost 1.
    estimator_.etx_map[NodeId{1}] = 1.0;
    routing_.on_beacon(NodeId{1}, beacon_from(NodeId{99}, 0.0));
  }

  /// Completes the oldest outstanding MAC send with the given ack result.
  void complete(bool acked) {
    ASSERT_FALSE(pending_done_.empty());
    auto done = std::move(pending_done_.front());
    pending_done_.pop_front();
    done(acked);
  }

  struct Sent {
    NodeId dst;
    std::vector<std::uint8_t> payload;
  };

  sim::Simulator sim_;
  FakeEstimator estimator_;
  CollectionConfig config_;
  stats::Metrics metrics_;
  RoutingEngine routing_;
  ForwardingEngine forwarding_;
  std::vector<Sent> sends_;
  std::deque<std::function<void(bool)>> pending_done_;
};

TEST_F(ForwardingFixture, OriginatesTowardParent) {
  const std::vector<std::uint8_t> app{1, 2, 3};
  EXPECT_TRUE(forwarding_.send(app));
  ASSERT_EQ(sends_.size(), 1u);
  EXPECT_EQ(sends_[0].dst, NodeId{1});
  const auto decoded = decode_data(sends_[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.origin, NodeId{10});
  EXPECT_EQ(decoded->header.thl, 0);
  EXPECT_EQ(decoded->app_payload, app);
  EXPECT_EQ(metrics_.generated_total(), 1u);
}

TEST_F(ForwardingFixture, AckBitReportedPerTransmission) {
  (void)forwarding_.send(std::vector<std::uint8_t>{1});
  complete(false);
  sim_.run_for(config_.retx_delay + sim::Duration::from_ms(1));
  complete(true);
  ASSERT_EQ(estimator_.ack_reports.size(), 2u);
  EXPECT_EQ(estimator_.ack_reports[0], (std::pair<NodeId, bool>{NodeId{1},
                                                                false}));
  EXPECT_EQ(estimator_.ack_reports[1], (std::pair<NodeId, bool>{NodeId{1},
                                                                true}));
  EXPECT_EQ(metrics_.data_tx_total(), 2u);
}

TEST_F(ForwardingFixture, RetransmitsUntilBudgetThenDrops) {
  config_ = CollectionConfig{};
  (void)forwarding_.send(std::vector<std::uint8_t>{1});
  const int budget = CollectionConfig{}.max_retransmissions;
  for (int i = 0; i <= budget; ++i) {
    complete(false);
    sim_.run_for(CollectionConfig{}.retx_delay + sim::Duration::from_ms(1));
  }
  EXPECT_TRUE(pending_done_.empty()) << "packet must be dropped after budget";
  EXPECT_EQ(metrics_.retx_drops(), 1u);
  EXPECT_EQ(forwarding_.queue_depth(), 0u);
}

namespace {

/// Captures kDataDrop events off the simulator's telemetry stream.
struct DropCapture final : sim::TelemetrySink {
  std::vector<sim::TelemetryEvent> drops;
  void on_event(const sim::TelemetryEvent& event) override {
    if (event.kind == sim::EventKind::kDataDrop) drops.push_back(event);
  }
};

}  // namespace

TEST_F(ForwardingFixture, QueueAndRetxDropsAreTraced) {
  // Every dropped data packet must leave a telemetry event (the fault
  // benches read these to attribute loss), tagged with reason + origin.
  DropCapture capture;
  sim_.telemetry().set_sink(&capture);

  // Exhaust one packet's retransmission budget...
  (void)forwarding_.send(std::vector<std::uint8_t>{1});
  const int budget = CollectionConfig{}.max_retransmissions;
  for (int i = 0; i <= budget; ++i) {
    complete(false);
    sim_.run_for(CollectionConfig{}.retx_delay + sim::Duration::from_ms(1));
  }
  // ...then overflow the origin queue.
  for (std::size_t i = 0; i < config_.queue_capacity + 3; ++i) {
    (void)forwarding_.send(std::vector<std::uint8_t>{1});
  }

  sim_.telemetry().set_sink(nullptr);

  bool saw_retx = false;
  bool saw_queue = false;
  for (const auto& event : capture.drops) {
    const auto reason = static_cast<sim::DropReason>(event.arg2);
    if (reason == sim::DropReason::kRetxExhausted) saw_retx = true;
    if (reason == sim::DropReason::kQueueFullOrigin) saw_queue = true;
  }
  EXPECT_TRUE(saw_retx) << "retx-budget drop was not traced";
  EXPECT_TRUE(saw_queue) << "queue-overflow drop was not traced";
}

TEST_F(ForwardingFixture, CrashEmptiesQueueAndDupCache) {
  (void)forwarding_.send(std::vector<std::uint8_t>{1});
  (void)forwarding_.send(std::vector<std::uint8_t>{2});
  ASSERT_GT(forwarding_.queue_depth(), 0u);
  forwarding_.crash();
  EXPECT_EQ(forwarding_.queue_depth(), 0u);
  // The MAC reset dropped the in-flight send's completion callback, so
  // nothing fires into the wiped engine (CollectionNode::crash resets
  // the MAC before the forwarder for exactly this reason).
}

TEST_F(ForwardingFixture, ForwardsReceivedDataWithIncrementedThl) {
  DataHeader h;
  h.origin = NodeId{5};
  h.seq = 9;
  h.thl = 3;
  h.sender_path_etx = 10.0;
  forwarding_.on_data(NodeId{5}, h.encode(std::vector<std::uint8_t>{7}),
                      link::PacketPhyInfo{});
  ASSERT_EQ(sends_.size(), 1u);
  const auto fwd = decode_data(sends_[0].payload);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->header.origin, NodeId{5});
  EXPECT_EQ(fwd->header.thl, 4);
}

TEST_F(ForwardingFixture, DuplicateDataDropped) {
  DataHeader h;
  h.origin = NodeId{5};
  h.seq = 9;
  h.sender_path_etx = 10.0;
  const auto bytes = h.encode(std::vector<std::uint8_t>{});
  forwarding_.on_data(NodeId{5}, bytes, link::PacketPhyInfo{});
  forwarding_.on_data(NodeId{5}, bytes, link::PacketPhyInfo{});
  EXPECT_EQ(sends_.size(), 1u);
  EXPECT_EQ(metrics_.duplicate_rx(), 1u);
}

TEST_F(ForwardingFixture, ThlCapDropsCirclingPackets) {
  DataHeader h;
  h.origin = NodeId{5};
  h.seq = 9;
  h.thl = static_cast<std::uint8_t>(config_.max_thl);
  h.sender_path_etx = 10.0;
  forwarding_.on_data(NodeId{5}, h.encode(std::vector<std::uint8_t>{}),
                      link::PacketPhyInfo{});
  EXPECT_TRUE(sends_.empty());
}

TEST_F(ForwardingFixture, QueueOverflowDrops) {
  // Fill the queue; the head is in flight, the rest wait.
  for (std::size_t i = 0; i < config_.queue_capacity + 3; ++i) {
    (void)forwarding_.send(std::vector<std::uint8_t>{1});
  }
  EXPECT_GT(metrics_.queue_drops(), 0u);
}

TEST_F(ForwardingFixture, RootDeliversToSink) {
  FakeEstimator est;
  RoutingEngine root_routing{sim_, NodeId{0}, true, est, config_,
                             sim::Rng{3}};
  ForwardingEngine root_fwd{sim_,  NodeId{0}, root_routing, est,
                            config_, &metrics_, sim::Rng{4}};
  int sink_packets = 0;
  root_fwd.set_sink_handler(
      [&](const DataHeader& h, std::span<const std::uint8_t> payload) {
        ++sink_packets;
        EXPECT_EQ(h.origin, NodeId{5});
        EXPECT_EQ(payload.size(), 2u);
      });
  DataHeader h;
  h.origin = NodeId{5};
  h.seq = 1;
  h.sender_path_etx = 1.0;
  root_fwd.on_data(NodeId{5}, h.encode(std::vector<std::uint8_t>{1, 2}),
                   link::PacketPhyInfo{});
  EXPECT_EQ(sink_packets, 1);
  EXPECT_EQ(metrics_.delivered_unique_total(), 1u);
}

TEST_F(ForwardingFixture, RootOwnPacketsDeliverLocally) {
  FakeEstimator est;
  RoutingEngine root_routing{sim_, NodeId{0}, true, est, config_,
                             sim::Rng{3}};
  ForwardingEngine root_fwd{sim_,  NodeId{0}, root_routing, est,
                            config_, &metrics_, sim::Rng{4}};
  int sink_packets = 0;
  root_fwd.set_sink_handler([&](const DataHeader&,
                                std::span<const std::uint8_t>) {
    ++sink_packets;
  });
  EXPECT_TRUE(root_fwd.send(std::vector<std::uint8_t>{1}));
  EXPECT_EQ(sink_packets, 1);
}

}  // namespace
}  // namespace fourbit::net
