# Empty dependencies file for fig3_lqi_blindness.
# This may be replaced when dependencies are built.
