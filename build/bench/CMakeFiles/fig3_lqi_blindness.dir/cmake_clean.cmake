file(REMOVE_RECURSE
  "CMakeFiles/fig3_lqi_blindness.dir/fig3_lqi_blindness.cpp.o"
  "CMakeFiles/fig3_lqi_blindness.dir/fig3_lqi_blindness.cpp.o.d"
  "fig3_lqi_blindness"
  "fig3_lqi_blindness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lqi_blindness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
