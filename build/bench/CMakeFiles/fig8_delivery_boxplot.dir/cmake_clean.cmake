file(REMOVE_RECURSE
  "CMakeFiles/fig8_delivery_boxplot.dir/fig8_delivery_boxplot.cpp.o"
  "CMakeFiles/fig8_delivery_boxplot.dir/fig8_delivery_boxplot.cpp.o.d"
  "fig8_delivery_boxplot"
  "fig8_delivery_boxplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_delivery_boxplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
