# Empty dependencies file for fig8_delivery_boxplot.
# This may be replaced when dependencies are built.
