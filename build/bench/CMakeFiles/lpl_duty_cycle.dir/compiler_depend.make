# Empty compiler generated dependencies file for lpl_duty_cycle.
# This may be replaced when dependencies are built.
