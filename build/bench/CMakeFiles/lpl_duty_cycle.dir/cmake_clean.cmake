file(REMOVE_RECURSE
  "CMakeFiles/lpl_duty_cycle.dir/lpl_duty_cycle.cpp.o"
  "CMakeFiles/lpl_duty_cycle.dir/lpl_duty_cycle.cpp.o.d"
  "lpl_duty_cycle"
  "lpl_duty_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpl_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
