file(REMOVE_RECURSE
  "CMakeFiles/energy_lifetime.dir/energy_lifetime.cpp.o"
  "CMakeFiles/energy_lifetime.dir/energy_lifetime.cpp.o.d"
  "energy_lifetime"
  "energy_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
