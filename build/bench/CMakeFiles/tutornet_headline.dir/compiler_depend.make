# Empty compiler generated dependencies file for tutornet_headline.
# This may be replaced when dependencies are built.
