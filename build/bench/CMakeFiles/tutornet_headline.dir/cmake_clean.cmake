file(REMOVE_RECURSE
  "CMakeFiles/tutornet_headline.dir/tutornet_headline.cpp.o"
  "CMakeFiles/tutornet_headline.dir/tutornet_headline.cpp.o.d"
  "tutornet_headline"
  "tutornet_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tutornet_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
