# Empty compiler generated dependencies file for fig2_routing_trees.
# This may be replaced when dependencies are built.
