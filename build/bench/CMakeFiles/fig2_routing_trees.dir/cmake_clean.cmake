file(REMOVE_RECURSE
  "CMakeFiles/fig2_routing_trees.dir/fig2_routing_trees.cpp.o"
  "CMakeFiles/fig2_routing_trees.dir/fig2_routing_trees.cpp.o.d"
  "fig2_routing_trees"
  "fig2_routing_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_routing_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
