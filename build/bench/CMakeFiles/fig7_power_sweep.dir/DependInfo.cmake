
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_power_sweep.cpp" "bench/CMakeFiles/fig7_power_sweep.dir/fig7_power_sweep.cpp.o" "gcc" "bench/CMakeFiles/fig7_power_sweep.dir/fig7_power_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runner/CMakeFiles/fourbit_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/fourbit_app.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/fourbit_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fourbit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fourbit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/fourbit_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fourbit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/fourbit_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/fourbit_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fourbit_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
