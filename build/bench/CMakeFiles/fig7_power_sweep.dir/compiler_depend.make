# Empty compiler generated dependencies file for fig7_power_sweep.
# This may be replaced when dependencies are built.
