file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimator_params.dir/ablation_estimator_params.cpp.o"
  "CMakeFiles/ablation_estimator_params.dir/ablation_estimator_params.cpp.o.d"
  "ablation_estimator_params"
  "ablation_estimator_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimator_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
