# Empty compiler generated dependencies file for ablation_estimator_params.
# This may be replaced when dependencies are built.
