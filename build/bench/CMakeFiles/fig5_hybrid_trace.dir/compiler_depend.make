# Empty compiler generated dependencies file for fig5_hybrid_trace.
# This may be replaced when dependencies are built.
