# Empty compiler generated dependencies file for inspect_network.
# This may be replaced when dependencies are built.
