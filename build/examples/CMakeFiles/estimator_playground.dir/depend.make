# Empty dependencies file for estimator_playground.
# This may be replaced when dependencies are built.
