file(REMOVE_RECURSE
  "CMakeFiles/estimator_playground.dir/estimator_playground.cpp.o"
  "CMakeFiles/estimator_playground.dir/estimator_playground.cpp.o.d"
  "estimator_playground"
  "estimator_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
