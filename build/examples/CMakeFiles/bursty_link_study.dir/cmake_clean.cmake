file(REMOVE_RECURSE
  "CMakeFiles/bursty_link_study.dir/bursty_link_study.cpp.o"
  "CMakeFiles/bursty_link_study.dir/bursty_link_study.cpp.o.d"
  "bursty_link_study"
  "bursty_link_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_link_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
