# Empty compiler generated dependencies file for bursty_link_study.
# This may be replaced when dependencies are built.
