# Empty compiler generated dependencies file for link_survey.
# This may be replaced when dependencies are built.
