file(REMOVE_RECURSE
  "CMakeFiles/link_survey.dir/link_survey.cpp.o"
  "CMakeFiles/link_survey.dir/link_survey.cpp.o.d"
  "link_survey"
  "link_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
