# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_playground "/root/repo/build/examples/estimator_playground")
set_tests_properties(example_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bursty_link "/root/repo/build/examples/bursty_link_study")
set_tests_properties(example_bursty_link PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_link_survey "/root/repo/build/examples/link_survey")
set_tests_properties(example_link_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect "/root/repo/build/examples/inspect_network" "2" "4b" "7")
set_tests_properties(example_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_comparison "/root/repo/build/examples/testbed_comparison" "3" "1")
set_tests_properties(example_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
