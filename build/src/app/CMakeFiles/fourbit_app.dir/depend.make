# Empty dependencies file for fourbit_app.
# This may be replaced when dependencies are built.
