file(REMOVE_RECURSE
  "libfourbit_app.a"
)
