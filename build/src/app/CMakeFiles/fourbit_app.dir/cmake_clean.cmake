file(REMOVE_RECURSE
  "CMakeFiles/fourbit_app.dir/traffic.cpp.o"
  "CMakeFiles/fourbit_app.dir/traffic.cpp.o.d"
  "libfourbit_app.a"
  "libfourbit_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
