# Empty compiler generated dependencies file for fourbit_mac.
# This may be replaced when dependencies are built.
