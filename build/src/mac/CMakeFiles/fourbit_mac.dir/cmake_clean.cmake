file(REMOVE_RECURSE
  "CMakeFiles/fourbit_mac.dir/csma.cpp.o"
  "CMakeFiles/fourbit_mac.dir/csma.cpp.o.d"
  "CMakeFiles/fourbit_mac.dir/frame.cpp.o"
  "CMakeFiles/fourbit_mac.dir/frame.cpp.o.d"
  "CMakeFiles/fourbit_mac.dir/lpl.cpp.o"
  "CMakeFiles/fourbit_mac.dir/lpl.cpp.o.d"
  "libfourbit_mac.a"
  "libfourbit_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
