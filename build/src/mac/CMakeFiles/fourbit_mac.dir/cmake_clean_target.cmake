file(REMOVE_RECURSE
  "libfourbit_mac.a"
)
