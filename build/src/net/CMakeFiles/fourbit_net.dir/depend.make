# Empty dependencies file for fourbit_net.
# This may be replaced when dependencies are built.
