file(REMOVE_RECURSE
  "libfourbit_net.a"
)
