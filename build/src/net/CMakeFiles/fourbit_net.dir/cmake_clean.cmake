file(REMOVE_RECURSE
  "CMakeFiles/fourbit_net.dir/collection_node.cpp.o"
  "CMakeFiles/fourbit_net.dir/collection_node.cpp.o.d"
  "CMakeFiles/fourbit_net.dir/forwarding_engine.cpp.o"
  "CMakeFiles/fourbit_net.dir/forwarding_engine.cpp.o.d"
  "CMakeFiles/fourbit_net.dir/packets.cpp.o"
  "CMakeFiles/fourbit_net.dir/packets.cpp.o.d"
  "CMakeFiles/fourbit_net.dir/routing_engine.cpp.o"
  "CMakeFiles/fourbit_net.dir/routing_engine.cpp.o.d"
  "libfourbit_net.a"
  "libfourbit_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
