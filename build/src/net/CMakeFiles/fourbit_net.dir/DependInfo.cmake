
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/collection_node.cpp" "src/net/CMakeFiles/fourbit_net.dir/collection_node.cpp.o" "gcc" "src/net/CMakeFiles/fourbit_net.dir/collection_node.cpp.o.d"
  "/root/repo/src/net/forwarding_engine.cpp" "src/net/CMakeFiles/fourbit_net.dir/forwarding_engine.cpp.o" "gcc" "src/net/CMakeFiles/fourbit_net.dir/forwarding_engine.cpp.o.d"
  "/root/repo/src/net/packets.cpp" "src/net/CMakeFiles/fourbit_net.dir/packets.cpp.o" "gcc" "src/net/CMakeFiles/fourbit_net.dir/packets.cpp.o.d"
  "/root/repo/src/net/routing_engine.cpp" "src/net/CMakeFiles/fourbit_net.dir/routing_engine.cpp.o" "gcc" "src/net/CMakeFiles/fourbit_net.dir/routing_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fourbit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/fourbit_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fourbit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/fourbit_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
