# Empty dependencies file for fourbit_topology.
# This may be replaced when dependencies are built.
