file(REMOVE_RECURSE
  "libfourbit_topology.a"
)
