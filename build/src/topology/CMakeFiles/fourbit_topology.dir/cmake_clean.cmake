file(REMOVE_RECURSE
  "CMakeFiles/fourbit_topology.dir/topology.cpp.o"
  "CMakeFiles/fourbit_topology.dir/topology.cpp.o.d"
  "libfourbit_topology.a"
  "libfourbit_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
