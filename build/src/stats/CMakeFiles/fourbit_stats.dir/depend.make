# Empty dependencies file for fourbit_stats.
# This may be replaced when dependencies are built.
