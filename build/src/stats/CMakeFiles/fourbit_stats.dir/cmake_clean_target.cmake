file(REMOVE_RECURSE
  "libfourbit_stats.a"
)
