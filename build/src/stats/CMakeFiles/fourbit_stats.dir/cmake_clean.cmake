file(REMOVE_RECURSE
  "CMakeFiles/fourbit_stats.dir/metrics.cpp.o"
  "CMakeFiles/fourbit_stats.dir/metrics.cpp.o.d"
  "libfourbit_stats.a"
  "libfourbit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
