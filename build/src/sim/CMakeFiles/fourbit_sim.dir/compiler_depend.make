# Empty compiler generated dependencies file for fourbit_sim.
# This may be replaced when dependencies are built.
