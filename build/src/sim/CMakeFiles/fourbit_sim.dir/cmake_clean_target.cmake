file(REMOVE_RECURSE
  "libfourbit_sim.a"
)
