file(REMOVE_RECURSE
  "CMakeFiles/fourbit_sim.dir/event_queue.cpp.o"
  "CMakeFiles/fourbit_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/fourbit_sim.dir/rng.cpp.o"
  "CMakeFiles/fourbit_sim.dir/rng.cpp.o.d"
  "CMakeFiles/fourbit_sim.dir/simulator.cpp.o"
  "CMakeFiles/fourbit_sim.dir/simulator.cpp.o.d"
  "libfourbit_sim.a"
  "libfourbit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
