# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("phy")
subdirs("mac")
subdirs("link")
subdirs("core")
subdirs("estimators")
subdirs("net")
subdirs("app")
subdirs("topology")
subdirs("stats")
subdirs("runner")
