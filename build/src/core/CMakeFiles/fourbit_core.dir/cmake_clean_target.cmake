file(REMOVE_RECURSE
  "libfourbit_core.a"
)
