file(REMOVE_RECURSE
  "CMakeFiles/fourbit_core.dir/four_bit_estimator.cpp.o"
  "CMakeFiles/fourbit_core.dir/four_bit_estimator.cpp.o.d"
  "libfourbit_core.a"
  "libfourbit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
