# Empty dependencies file for fourbit_core.
# This may be replaced when dependencies are built.
