
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/fourbit_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/fourbit_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/interference.cpp" "src/phy/CMakeFiles/fourbit_phy.dir/interference.cpp.o" "gcc" "src/phy/CMakeFiles/fourbit_phy.dir/interference.cpp.o.d"
  "/root/repo/src/phy/lqi.cpp" "src/phy/CMakeFiles/fourbit_phy.dir/lqi.cpp.o" "gcc" "src/phy/CMakeFiles/fourbit_phy.dir/lqi.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/fourbit_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/fourbit_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/propagation.cpp" "src/phy/CMakeFiles/fourbit_phy.dir/propagation.cpp.o" "gcc" "src/phy/CMakeFiles/fourbit_phy.dir/propagation.cpp.o.d"
  "/root/repo/src/phy/radio.cpp" "src/phy/CMakeFiles/fourbit_phy.dir/radio.cpp.o" "gcc" "src/phy/CMakeFiles/fourbit_phy.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fourbit_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
