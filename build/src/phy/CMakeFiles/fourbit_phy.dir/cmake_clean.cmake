file(REMOVE_RECURSE
  "CMakeFiles/fourbit_phy.dir/channel.cpp.o"
  "CMakeFiles/fourbit_phy.dir/channel.cpp.o.d"
  "CMakeFiles/fourbit_phy.dir/interference.cpp.o"
  "CMakeFiles/fourbit_phy.dir/interference.cpp.o.d"
  "CMakeFiles/fourbit_phy.dir/lqi.cpp.o"
  "CMakeFiles/fourbit_phy.dir/lqi.cpp.o.d"
  "CMakeFiles/fourbit_phy.dir/modulation.cpp.o"
  "CMakeFiles/fourbit_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/fourbit_phy.dir/propagation.cpp.o"
  "CMakeFiles/fourbit_phy.dir/propagation.cpp.o.d"
  "CMakeFiles/fourbit_phy.dir/radio.cpp.o"
  "CMakeFiles/fourbit_phy.dir/radio.cpp.o.d"
  "libfourbit_phy.a"
  "libfourbit_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
