file(REMOVE_RECURSE
  "libfourbit_phy.a"
)
