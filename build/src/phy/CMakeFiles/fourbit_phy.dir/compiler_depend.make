# Empty compiler generated dependencies file for fourbit_phy.
# This may be replaced when dependencies are built.
