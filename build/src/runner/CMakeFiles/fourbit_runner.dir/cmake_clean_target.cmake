file(REMOVE_RECURSE
  "libfourbit_runner.a"
)
