# Empty compiler generated dependencies file for fourbit_runner.
# This may be replaced when dependencies are built.
