file(REMOVE_RECURSE
  "CMakeFiles/fourbit_runner.dir/describe.cpp.o"
  "CMakeFiles/fourbit_runner.dir/describe.cpp.o.d"
  "CMakeFiles/fourbit_runner.dir/experiment.cpp.o"
  "CMakeFiles/fourbit_runner.dir/experiment.cpp.o.d"
  "CMakeFiles/fourbit_runner.dir/network.cpp.o"
  "CMakeFiles/fourbit_runner.dir/network.cpp.o.d"
  "CMakeFiles/fourbit_runner.dir/profile.cpp.o"
  "CMakeFiles/fourbit_runner.dir/profile.cpp.o.d"
  "libfourbit_runner.a"
  "libfourbit_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
