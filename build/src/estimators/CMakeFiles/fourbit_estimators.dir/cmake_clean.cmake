file(REMOVE_RECURSE
  "CMakeFiles/fourbit_estimators.dir/broadcast_etx.cpp.o"
  "CMakeFiles/fourbit_estimators.dir/broadcast_etx.cpp.o.d"
  "CMakeFiles/fourbit_estimators.dir/lqi_estimator.cpp.o"
  "CMakeFiles/fourbit_estimators.dir/lqi_estimator.cpp.o.d"
  "libfourbit_estimators.a"
  "libfourbit_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourbit_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
