# Empty dependencies file for fourbit_estimators.
# This may be replaced when dependencies are built.
