file(REMOVE_RECURSE
  "libfourbit_estimators.a"
)
