// Hot-path microbenchmarks (google-benchmark).
//
// These are the operations a real deployment would run per packet or per
// event: estimator updates, beacon wrap/unwrap, event-queue operations,
// PRR model lookups, and a full small-network simulation step rate.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "mac/frame.hpp"
#include "net/packets.hpp"
#include "phy/modulation.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

using namespace fourbit;

namespace {

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    q.schedule(sim::Time::from_us(t += 7), [] {});
    if (q.size() > 1024) {
      while (!q.empty()) q.pop();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_FourBitAckUpdate(benchmark::State& state) {
  core::FourBitEstimator est{core::FourBitConfig{}, sim::Rng{1}};
  link::PacketPhyInfo info{.white = true, .lqi = 110};
  const std::vector<std::uint8_t> beacon{0};
  (void)est.unwrap_beacon(NodeId{1}, beacon, info);
  bool acked = true;
  for (auto _ : state) {
    est.on_unicast_result(NodeId{1}, acked);
    acked = !acked;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourBitAckUpdate);

void BM_FourBitBeaconUnwrap(benchmark::State& state) {
  core::FourBitEstimator est{core::FourBitConfig{}, sim::Rng{1}};
  link::PacketPhyInfo info{.white = true, .lqi = 110};
  std::uint8_t seq = 0;
  for (auto _ : state) {
    const std::vector<std::uint8_t> beacon{seq++, 1, 2, 3, 4};
    benchmark::DoNotOptimize(est.unwrap_beacon(NodeId{1}, beacon, info));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourBitBeaconUnwrap);

void BM_MacFrameRoundTrip(benchmark::State& state) {
  mac::MacFrame f;
  f.type = mac::FrameType::kData;
  f.dsn = 42;
  f.src = NodeId{7};
  f.dst = NodeId{9};
  f.payload.assign(30, 0xAB);
  for (auto _ : state) {
    const auto bytes = f.encode();
    benchmark::DoNotOptimize(mac::MacFrame::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacFrameRoundTrip);

void BM_DataHeaderRoundTrip(benchmark::State& state) {
  net::DataHeader h;
  h.origin = NodeId{3};
  h.seq = 1234;
  h.thl = 2;
  h.sender_path_etx = 3.7;
  const std::vector<std::uint8_t> payload(20, 0xCD);
  for (auto _ : state) {
    const auto bytes = h.encode(payload);
    benchmark::DoNotOptimize(net::decode_data(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataHeaderRoundTrip);

void BM_OqpskPrrLookup(benchmark::State& state) {
  phy::OqpskModulation mod;
  double snr = -10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.packet_reception_ratio(snr, 40));
    snr += 0.01;
    if (snr > 10.0) snr = -10.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OqpskPrrLookup);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_in(sim::Duration::from_us(i * 13 + 1),
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SimulatorTimerChurn);

}  // namespace

BENCHMARK_MAIN();
