// Hot-path microbenchmarks (google-benchmark).
//
// These are the operations a real deployment would run per packet or per
// event: estimator updates, beacon wrap/unwrap, event-queue operations,
// PRR model lookups, and a full small-network simulation step rate.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "mac/frame.hpp"
#include "net/packets.hpp"
#include "phy/channel.hpp"
#include "phy/hardware.hpp"
#include "phy/interference.hpp"
#include "phy/modulation.hpp"
#include "phy/radio.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

using namespace fourbit;

namespace {

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

/// arg 0 selects the implementation on every event-queue bench:
/// 0 = binary heap (reference), 1 = calendar queue (default).
sim::EventQueue::Impl impl_arg(std::int64_t v) {
  return v != 0 ? sim::EventQueue::Impl::kCalendar
                : sim::EventQueue::Impl::kHeap;
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q{impl_arg(state.range(0))};
  std::int64_t t = 0;
  for (auto _ : state) {
    q.schedule(sim::Time::from_us(t += 7), [] {});
    if (q.size() > 1024) {
      while (!q.empty()) q.pop();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(0)->Arg(1);

/// Simulator equilibrium: a pending population of range(1) events, one
/// pop + one schedule per step. This is the shape that separates the
/// heap's O(log n) from the calendar's O(1) — the pending set in a
/// large campaign trial sits in the thousands.
void BM_EventQueueSteadyState(benchmark::State& state) {
  sim::EventQueue q{impl_arg(state.range(0))};
  const auto depth = static_cast<std::size_t>(state.range(1));
  sim::Rng rng{1};
  std::int64_t now = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    q.schedule(sim::Time::from_us(
                   now + 1 + static_cast<std::int64_t>(rng.uniform_int(100'000))),
               [] {});
  }
  for (auto _ : state) {
    auto popped = q.pop();
    now = popped.time.us();
    q.schedule(sim::Time::from_us(
                   now + 1 + static_cast<std::int64_t>(rng.uniform_int(100'000))),
               [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState)
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({0, 16384})
    ->Args({1, 16384});

/// Timer churn: most scheduled events are cancelled and rescheduled
/// before they fire (MAC backoff and ack timers do exactly this).
void BM_EventQueueCancelChurn(benchmark::State& state) {
  sim::EventQueue q{impl_arg(state.range(0))};
  sim::Rng rng{1};
  std::int64_t now = 0;
  constexpr std::size_t kLive = 512;
  std::vector<sim::EventId> ids(kLive);
  for (std::size_t i = 0; i < kLive; ++i) {
    ids[i] = q.schedule(
        sim::Time::from_us(
            now + 1 + static_cast<std::int64_t>(rng.uniform_int(50'000))),
        [] {});
  }
  std::size_t slot = 0;
  for (auto _ : state) {
    q.cancel(ids[slot]);
    ids[slot] = q.schedule(
        sim::Time::from_us(
            now + 1 + static_cast<std::int64_t>(rng.uniform_int(50'000))),
        [] {});
    slot = (slot + 1) % kLive;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(0)->Arg(1);

void BM_FourBitAckUpdate(benchmark::State& state) {
  core::FourBitEstimator est{core::FourBitConfig{}, sim::Rng{1}};
  link::PacketPhyInfo info{.white = true, .lqi = 110};
  const std::vector<std::uint8_t> beacon{0};
  (void)est.unwrap_beacon(NodeId{1}, beacon, info);
  bool acked = true;
  for (auto _ : state) {
    est.on_unicast_result(NodeId{1}, acked);
    acked = !acked;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourBitAckUpdate);

void BM_FourBitBeaconUnwrap(benchmark::State& state) {
  core::FourBitEstimator est{core::FourBitConfig{}, sim::Rng{1}};
  link::PacketPhyInfo info{.white = true, .lqi = 110};
  std::uint8_t seq = 0;
  for (auto _ : state) {
    const std::vector<std::uint8_t> beacon{seq++, 1, 2, 3, 4};
    benchmark::DoNotOptimize(est.unwrap_beacon(NodeId{1}, beacon, info));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourBitBeaconUnwrap);

void BM_MacFrameRoundTrip(benchmark::State& state) {
  mac::MacFrame f;
  f.type = mac::FrameType::kData;
  f.dsn = 42;
  f.src = NodeId{7};
  f.dst = NodeId{9};
  f.payload.assign(30, 0xAB);
  for (auto _ : state) {
    const auto bytes = f.encode();
    benchmark::DoNotOptimize(mac::MacFrame::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacFrameRoundTrip);

void BM_DataHeaderRoundTrip(benchmark::State& state) {
  net::DataHeader h;
  h.origin = NodeId{3};
  h.seq = 1234;
  h.thl = 2;
  h.sender_path_etx = 3.7;
  const std::vector<std::uint8_t> payload(20, 0xCD);
  for (auto _ : state) {
    const auto bytes = h.encode(payload);
    benchmark::DoNotOptimize(net::decode_data(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataHeaderRoundTrip);

void BM_OqpskPrrLookup(benchmark::State& state) {
  phy::OqpskModulation mod;
  double snr = -10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.packet_reception_ratio(snr, 40));
    snr += 0.01;
    if (snr > 10.0) snr = -10.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OqpskPrrLookup);

/// The batched SNR→PRR kernel over a contiguous span, as the channel's
/// delivery pass issues it; arg = receiver count per call. Compare the
/// per-item rate against BM_OqpskPrrLookup for the batching win.
void BM_PrrBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  phy::OqpskModulation mod;
  std::vector<double> sinr(n);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    sinr[i] = -12.0 + 24.0 * static_cast<double>(i) /
                          static_cast<double>(n > 1 ? n - 1 : 1);
  }
  for (auto _ : state) {
    mod.prr_batch(sinr, 40, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrrBatch)->Arg(16)->Arg(64)->Arg(256);

/// N radios on a grid; args = {node count, use_link_cache}. Measures one
/// full transmit -> deliver cycle, the channel's dominant cost. The
/// fast/slow pairs at each N are the microbench view of the speedup that
/// bench/channel_scaling.cpp measures end to end.
void BM_ChannelBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool fast = state.range(1) != 0;
  sim::Simulator sim;
  phy::PhyConfig phy;
  phy.use_link_cache = fast;
  phy::Channel channel{sim, phy, phy::PropagationConfig{},
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{1}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (std::size_t i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        channel, NodeId{static_cast<std::uint16_t>(i + 1)},
        Position{static_cast<double>(i % 16) * 30.0,
                 static_cast<double>(i / 16) * 30.0},
        phy::HardwareProfile{}, PowerDbm{0.0}));
  }
  const std::vector<std::uint8_t> frame(40, 0xAB);
  std::size_t sender = 0;
  for (auto _ : state) {
    radios[sender]->transmit(frame, nullptr);
    sim.run();
    sender = (sender + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelBroadcast)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({200, 0})
    ->Args({200, 1});

/// CCA while 8 transmissions hang in the air (the sim never advances, so
/// they stay active): the busy_at cost a CSMA backoff pays per sample.
void BM_ChannelCcaPoll(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  sim::Simulator sim;
  phy::PhyConfig phy;
  phy.use_link_cache = fast;
  phy::Channel channel{sim, phy, phy::PropagationConfig{},
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{1}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (std::size_t i = 0; i < 64; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        channel, NodeId{static_cast<std::uint16_t>(i + 1)},
        Position{static_cast<double>(i % 8) * 30.0,
                 static_cast<double>(i / 8) * 30.0},
        phy::HardwareProfile{}, PowerDbm{0.0}));
  }
  const std::vector<std::uint8_t> frame(40, 0xAB);
  for (std::size_t i = 0; i < 8; ++i) radios[i]->transmit(frame, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radios.back()->channel_clear());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelCcaPoll)->Arg(0)->Arg(1);

/// One emit() call with telemetry gated off entirely: the cost every
/// component pays per potential event when nobody is tracing. This is
/// the "disabled path" the telemetry design budgets at one branch —
/// compare against BM_TelemetryEnabled for the enabled ring-write cost.
void BM_TelemetryDisabled(benchmark::State& state) {
  sim::TelemetryContext telemetry;
  telemetry.set_level(sim::TraceLevel::kOff);
  std::uint16_t i = 0;
  for (auto _ : state) {
    telemetry.emit(sim::EventKind::kDataDrop, 1, 2, i++, 3);
    benchmark::DoNotOptimize(telemetry.events_recorded());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryDisabled);

/// The same emit with the ring write taken (kDebug records everything,
/// no sink attached): the flight-recorder overhead per recorded event.
void BM_TelemetryEnabled(benchmark::State& state) {
  sim::TelemetryContext telemetry;
  telemetry.set_level(sim::TraceLevel::kDebug);
  std::uint16_t i = 0;
  for (auto _ : state) {
    telemetry.emit(sim::EventKind::kDataDrop, 1, 2, i++, 3);
    benchmark::DoNotOptimize(telemetry.events_recorded());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryEnabled);

/// Counter-registry hot path: one pointer increment per event, resolved
/// once at registration.
void BM_TelemetryCounterIncrement(benchmark::State& state) {
  sim::TelemetryContext telemetry;
  std::uint64_t* counter = telemetry.counter("fwd", "data_tx", 1);
  for (auto _ : state) {
    ++*counter;
    benchmark::DoNotOptimize(*counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterIncrement);

/// One histogram record: a bit_width bucket index, one bin increment,
/// count and sum. The status-snapshot histograms (runner/status.hpp)
/// and --profile-phases timers both pay exactly this per sample.
void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram hist;
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 2862933555777941757ull) + 3037000493ull;  // cheap LCG spread
    benchmark::DoNotOptimize(hist.count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/// A PhaseTimer scope with profiling off: the cost every engine phase
/// pays per pass when --profile-phases is absent. Budgeted like
/// BM_TelemetryDisabled — one branch, no clock read, no registration —
/// and gated alongside it in CI perf-smoke.
void BM_PhaseTimerDisabled(benchmark::State& state) {
  sim::TelemetryContext telemetry;
  for (auto _ : state) {
    sim::PhaseTimer timer{telemetry, sim::ProfilePhase::kEventDispatch};
    benchmark::DoNotOptimize(telemetry.profiling());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseTimerDisabled);

/// The enabled counterpart: two steady_clock reads plus one histogram
/// record per phase pass — what a --profile-phases run actually costs.
void BM_PhaseTimerEnabled(benchmark::State& state) {
  sim::TelemetryContext telemetry;
  telemetry.set_profiling(true);
  for (auto _ : state) {
    sim::PhaseTimer timer{telemetry, sim::ProfilePhase::kEventDispatch};
    benchmark::DoNotOptimize(telemetry.profiling());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseTimerEnabled);

/// The channel broadcast workload with telemetry dialed to kDebug and a
/// ring write per frame (args: {telemetry level as int}). Together with
/// the BM_ChannelBroadcast pair above this bounds the end-to-end cost of
/// tracing the phy hot path; bench/channel_scaling.cpp --check gates it.
void BM_ChannelBroadcastTraced(benchmark::State& state) {
  const auto level = static_cast<sim::TraceLevel>(state.range(0));
  sim::Simulator sim;
  sim.telemetry().set_level(level);
  phy::PhyConfig phy;
  phy::Channel channel{sim, phy, phy::PropagationConfig{},
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{1}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (std::size_t i = 0; i < 50; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        channel, NodeId{static_cast<std::uint16_t>(i + 1)},
        Position{static_cast<double>(i % 16) * 30.0,
                 static_cast<double>(i / 16) * 30.0},
        phy::HardwareProfile{}, PowerDbm{0.0}));
  }
  const std::vector<std::uint8_t> frame(40, 0xAB);
  std::size_t sender = 0;
  for (auto _ : state) {
    radios[sender]->transmit(frame, nullptr);
    sim.run();
    sender = (sender + 1) % radios.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelBroadcastTraced)
    ->Arg(static_cast<int>(sim::TraceLevel::kOff))
    ->Arg(static_cast<int>(sim::TraceLevel::kInfo))
    ->Arg(static_cast<int>(sim::TraceLevel::kDebug));

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_in(sim::Duration::from_us(i * 13 + 1),
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SimulatorTimerChurn);

}  // namespace

BENCHMARK_MAIN();
