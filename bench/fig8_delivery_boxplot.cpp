// Figure 8 — per-node delivery-ratio distributions vs. transmit power.
//
// Boxplots (min / Q1 / median / Q3 / max) of each node's delivery ratio
// for MultiHopLQI and 4B at 0, -10 and -20 dBm on the Mirage testbed.
// Paper shape: 4B's boxes are pinned near 1.0 at every power (min 99.3%
// at 0 dBm); MultiHopLQI's spread widens dramatically as power drops
// (mean 95.9% with a 64% worst node at 0 dBm, far worse at -20 dBm).
//
// All (protocol, power, seed) trials fan out across one Campaign pool;
// each cell's boxplot pools the per-node samples of its seeds.
//
//   usage: fig8_delivery_boxplot [minutes=40] [seeds=5] [--threads N]
//          [--journal FILE] [--max-trial-ms N] [--retries N]
//          [--status-json FILE] [--status-interval-ms N] [--profile-phases]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

runner::ExperimentConfig make_trial(runner::Profile profile, double power_dbm,
                                    double minutes, int s) {
  const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(s) * 77;
  sim::Rng rng{seed};
  runner::ExperimentConfig config;
  config.testbed = topology::mirage(rng);
  config.profile = profile;
  config.tx_power = PowerDbm{power_dbm};
  config.duration = sim::Duration::from_minutes(minutes);
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runner::consume_campaign_cli(argc, argv);
  const double minutes = argc > 1 ? std::atof(argv[1]) : 40.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "=== Figure 8: per-node delivery distributions vs. TX power ===\n"
      "Mirage-like testbed, %.0f min x %d seeds per cell\n\n",
      minutes, seeds);

  const std::vector<runner::Profile> profiles = {
      runner::Profile::kMultihopLqi, runner::Profile::kFourBit};
  const std::vector<double> powers = {0.0, -10.0, -20.0};

  std::vector<runner::ExperimentConfig> trials;
  for (const auto p : profiles) {
    for (const double power : powers) {
      for (int s = 0; s < seeds; ++s) {
        trials.push_back(make_trial(p, power, minutes, s));
      }
    }
  }
  const auto report =
      runner::run_campaign(trials, cli, runner::stderr_progress());
  if (const auto note = runner::describe(report); !note.empty()) {
    std::fprintf(stderr, "%s", note.c_str());
  }
  const auto& results = report.results;

  std::printf("%-14s %8s %7s %7s %7s %7s %7s %8s\n", "protocol", "power",
              "min", "Q1", "median", "Q3", "max", "mean");
  std::size_t offset = 0;
  for (const auto p : profiles) {
    for (const double power : powers) {
      const std::vector<runner::ExperimentResult> cell{
          results.begin() + static_cast<std::ptrdiff_t>(offset),
          results.begin() + static_cast<std::ptrdiff_t>(offset + seeds)};
      offset += seeds;
      const auto s = stats::five_number_summary(
          runner::pooled_per_node_delivery(cell));
      std::printf("%-14s %5.0f dBm %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% "
                  "%7.1f%%\n",
                  runner::profile_name(p).data(), power, s.min * 100.0,
                  s.q1 * 100.0, s.median * 100.0, s.q3 * 100.0,
                  s.max * 100.0, s.mean * 100.0);
    }
  }

  std::printf(
      "\nshape check: 4B rows should be pinned near 100%% with tiny spread\n"
      "at every power; MultiHopLQI rows should show a long low tail that\n"
      "worsens as transmit power falls.\n");

  if (cli.json) {
    std::printf("%s\n", runner::describe_json(report).c_str());
    for (const auto& failure : report.failures) {
      std::printf("%s\n", runner::describe_json(failure).c_str());
    }
  }
  return 0;
}
