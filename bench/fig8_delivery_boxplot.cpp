// Figure 8 — per-node delivery-ratio distributions vs. transmit power.
//
// Boxplots (min / Q1 / median / Q3 / max) of each node's delivery ratio
// for MultiHopLQI and 4B at 0, -10 and -20 dBm on the Mirage testbed.
// Paper shape: 4B's boxes are pinned near 1.0 at every power (min 99.3%
// at 0 dBm); MultiHopLQI's spread widens dramatically as power drops
// (mean 95.9% with a 64% worst node at 0 dBm, far worse at -20 dBm).
//
//   usage: fig8_delivery_boxplot [minutes=40] [seeds=5]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

stats::FiveNumber run_cell(runner::Profile profile, double power_dbm,
                           double minutes, int seeds) {
  std::vector<double> pooled;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig config;
    config.testbed = topology::mirage(rng);
    config.profile = profile;
    config.tx_power = PowerDbm{power_dbm};
    config.duration = sim::Duration::from_minutes(minutes);
    config.seed = seed;
    const auto r = runner::run_experiment(config);
    pooled.insert(pooled.end(), r.per_node_delivery.begin(),
                  r.per_node_delivery.end());
  }
  return stats::five_number_summary(std::move(pooled));
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 40.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "=== Figure 8: per-node delivery distributions vs. TX power ===\n"
      "Mirage-like testbed, %.0f min x %d seeds per cell\n\n",
      minutes, seeds);
  std::printf("%-14s %8s %7s %7s %7s %7s %7s %8s\n", "protocol", "power",
              "min", "Q1", "median", "Q3", "max", "mean");

  for (const auto p :
       {runner::Profile::kMultihopLqi, runner::Profile::kFourBit}) {
    for (const double power : {0.0, -10.0, -20.0}) {
      const auto s = run_cell(p, power, minutes, seeds);
      std::printf("%-14s %5.0f dBm %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% "
                  "%7.1f%%\n",
                  runner::profile_name(p).data(), power, s.min * 100.0,
                  s.q1 * 100.0, s.median * 100.0, s.q3 * 100.0,
                  s.max * 100.0, s.mean * 100.0);
    }
  }

  std::printf(
      "\nshape check: 4B rows should be pinned near 100%% with tiny spread\n"
      "at every power; MultiHopLQI rows should show a long low tail that\n"
      "worsens as transmit power falls.\n");
  return 0;
}
