// Figure 6 — exploring the link-estimation design space.
//
// The paper adds the four bits to CTP one group at a time and plots
// average cost against average routing-tree depth on the Mirage testbed:
//
//   CTP T2            (stock broadcast-probe estimator, 10-entry table)
//   CTP + ack bit     (unidirectional/hybrid estimation, no white/compare)
//   CTP + white/compare (probe estimation, cross-layer table admission)
//   4B                (all four bits)
//   MultiHopLQI       (PHY-only baseline)
//
// Paper shape to reproduce: the ack bit cuts CTP's cost by ~31% and
// slashes depth; white+compare alone cuts cost ~15%; only the full 4B
// beats MultiHopLQI (by ~29% cost on Mirage); cost never drops below
// depth (the perfect-link lower bound).
//
//   usage: fig6_design_space [minutes=40] [seeds=5] [out.csv]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/experiment.hpp"
#include "stats/csv.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Row {
  runner::Profile profile;
  double cost = 0.0;
  double depth = 0.0;
  double delivery = 0.0;
};

Row run_profile(runner::Profile profile, double minutes, int seeds) {
  Row row{profile, 0.0, 0.0, 0.0};
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig config;
    config.testbed = topology::mirage(rng);
    config.profile = profile;
    config.duration = sim::Duration::from_minutes(minutes);
    config.seed = seed;
    const auto r = runner::run_experiment(config);
    row.cost += r.cost;
    row.depth += r.mean_depth;
    row.delivery += r.delivery_ratio;
  }
  row.cost /= seeds;
  row.depth /= seeds;
  row.delivery /= seeds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 40.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;
  const char* csv_path = argc > 3 ? argv[3] : nullptr;

  std::printf(
      "=== Figure 6: cost vs. tree depth across the design space ===\n"
      "Mirage-like testbed, 85 nodes, 0 dBm, 1 pkt/10 s/node, %.0f min x %d "
      "seeds\n\n",
      minutes, seeds);

  const std::vector<runner::Profile> profiles = {
      runner::Profile::kCtpT2,
      runner::Profile::kCtpUnidirAck,
      runner::Profile::kCtpWhiteCompare,
      runner::Profile::kFourBit,
      runner::Profile::kMultihopLqi,
  };

  std::printf("%-20s %10s %10s %10s\n", "protocol", "cost", "depth",
              "delivery");
  std::vector<Row> rows;
  for (const auto p : profiles) {
    const Row row = run_profile(p, minutes, seeds);
    rows.push_back(row);
    std::printf("%-20s %10.2f %10.2f %9.1f%%\n",
                runner::profile_name(p).data(), row.cost, row.depth,
                row.delivery * 100.0);
  }

  // Paper's headline ratios for this figure.
  const Row& ctp = rows[0];
  const Row& ack = rows[1];
  const Row& wc = rows[2];
  const Row& fourb = rows[3];
  const Row& mhlqi = rows[4];
  if (csv_path != nullptr) {
    stats::CsvWriter csv{csv_path, {"protocol", "cost", "depth", "delivery"}};
    for (const auto& row : rows) {
      csv.row_values(runner::profile_name(row.profile), row.cost, row.depth,
                     row.delivery);
    }
    std::printf("\n(wrote %s)\n", csv_path);
  }

  std::printf("\nratios (paper targets in parentheses):\n");
  std::printf("  CTP+ack  cost vs CTP        : %5.1f%%  (-31%%)\n",
              (ack.cost / ctp.cost - 1.0) * 100.0);
  std::printf("  CTP+w/c  cost vs CTP        : %5.1f%%  (-15%%)\n",
              (wc.cost / ctp.cost - 1.0) * 100.0);
  std::printf("  4B       cost vs CTP        : %5.1f%%  (-45%%)\n",
              (fourb.cost / ctp.cost - 1.0) * 100.0);
  std::printf("  4B       cost vs MultiHopLQI: %5.1f%%  (-29%%)\n",
              (fourb.cost / mhlqi.cost - 1.0) * 100.0);
  std::printf("  4B       depth vs MultiHopLQI: %4.1f%%  (-11%%)\n",
              (fourb.depth / mhlqi.depth - 1.0) * 100.0);
  return 0;
}
