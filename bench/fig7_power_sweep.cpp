// Figure 7 — cost and average node depth vs. transmit power.
//
// The paper sweeps TX power over {0, -10, -20} dBm on the Mirage testbed
// for 4B and MultiHopLQI. Expected shape: depth and cost rise as power
// falls; 4B's cost stays 11-29% below MultiHopLQI's; at 0/-10 dBm 4B's
// cost is at most ~13% above the depth lower bound while MultiHopLQI's
// is up to ~43% above; at -20 dBm both inflate (retransmissions), 4B less.
//
//   usage: fig7_power_sweep [minutes=40] [seeds=5]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Cell {
  double cost = 0.0;
  double depth = 0.0;
  double delivery = 0.0;
};

Cell run_cell(runner::Profile profile, double power_dbm, double minutes,
              int seeds) {
  Cell cell;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig config;
    config.testbed = topology::mirage(rng);
    config.profile = profile;
    config.tx_power = PowerDbm{power_dbm};
    config.duration = sim::Duration::from_minutes(minutes);
    config.seed = seed;
    const auto r = runner::run_experiment(config);
    cell.cost += r.cost;
    cell.depth += r.mean_depth;
    cell.delivery += r.delivery_ratio;
  }
  cell.cost /= seeds;
  cell.depth /= seeds;
  cell.delivery /= seeds;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 40.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "=== Figure 7: cost and depth vs. transmit power (Mirage) ===\n"
      "%.0f min x %d seeds per cell\n\n",
      minutes, seeds);
  std::printf("%-14s %8s %10s %10s %10s %12s\n", "protocol", "power",
              "cost", "depth", "delivery", "cost/depth");

  const std::vector<double> powers = {0.0, -10.0, -20.0};
  std::vector<Cell> fourb;
  std::vector<Cell> mhlqi;
  for (const auto p : {runner::Profile::kFourBit,
                       runner::Profile::kMultihopLqi}) {
    for (const double power : powers) {
      const Cell c = run_cell(p, power, minutes, seeds);
      (p == runner::Profile::kFourBit ? fourb : mhlqi).push_back(c);
      std::printf("%-14s %5.0f dBm %10.2f %10.2f %9.1f%% %11.2fx\n",
                  runner::profile_name(p).data(), power, c.cost, c.depth,
                  c.delivery * 100.0, c.depth > 0 ? c.cost / c.depth : 0.0);
    }
  }

  std::printf("\n4B cost improvement over MultiHopLQI by power "
              "(paper: 29%% at 0 dBm down to 11%% at -20 dBm):\n");
  for (std::size_t i = 0; i < powers.size(); ++i) {
    std::printf("  %5.0f dBm: %+.1f%%\n", powers[i],
                (fourb[i].cost / mhlqi[i].cost - 1.0) * 100.0);
  }
  return 0;
}
