// Figure 7 — cost and average node depth vs. transmit power.
//
// The paper sweeps TX power over {0, -10, -20} dBm on the Mirage testbed
// for 4B and MultiHopLQI. Expected shape: depth and cost rise as power
// falls; 4B's cost stays 11-29% below MultiHopLQI's; at 0/-10 dBm 4B's
// cost is at most ~13% above the depth lower bound while MultiHopLQI's
// is up to ~43% above; at -20 dBm both inflate (retransmissions), 4B less.
//
// All (protocol, power, seed) trials fan out across one Campaign pool.
//
//   usage: fig7_power_sweep [minutes=40] [seeds=5] [--threads N]
//          [--journal FILE] [--max-trial-ms N] [--retries N]
//          [--status-json FILE] [--status-interval-ms N] [--profile-phases]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

runner::ExperimentConfig make_trial(runner::Profile profile, double power_dbm,
                                    double minutes, int s) {
  const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(s) * 77;
  sim::Rng rng{seed};
  runner::ExperimentConfig config;
  config.testbed = topology::mirage(rng);
  config.profile = profile;
  config.tx_power = PowerDbm{power_dbm};
  config.duration = sim::Duration::from_minutes(minutes);
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runner::consume_campaign_cli(argc, argv);
  const double minutes = argc > 1 ? std::atof(argv[1]) : 40.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "=== Figure 7: cost and depth vs. transmit power (Mirage) ===\n"
      "%.0f min x %d seeds per cell\n\n",
      minutes, seeds);

  const std::vector<runner::Profile> profiles = {
      runner::Profile::kFourBit, runner::Profile::kMultihopLqi};
  const std::vector<double> powers = {0.0, -10.0, -20.0};

  // One flat campaign, laid out [profile][power][seed].
  std::vector<runner::ExperimentConfig> trials;
  for (const auto p : profiles) {
    for (const double power : powers) {
      for (int s = 0; s < seeds; ++s) {
        trials.push_back(make_trial(p, power, minutes, s));
      }
    }
  }
  const auto report =
      runner::run_campaign(trials, cli, runner::stderr_progress());
  if (const auto note = runner::describe(report); !note.empty()) {
    std::fprintf(stderr, "%s", note.c_str());
  }
  const auto& results = report.results;

  std::printf("%-14s %8s %10s %10s %10s %10s %12s\n", "protocol", "power",
              "cost", "cost95ci", "depth", "delivery", "cost/depth");
  std::vector<runner::CampaignSummary> fourb;
  std::vector<runner::CampaignSummary> mhlqi;
  std::size_t offset = 0;
  for (const auto p : profiles) {
    for (const double power : powers) {
      const std::vector<runner::ExperimentResult> cell{
          results.begin() + static_cast<std::ptrdiff_t>(offset),
          results.begin() + static_cast<std::ptrdiff_t>(offset + seeds)};
      offset += seeds;
      const auto s = runner::summarize(cell);
      (p == runner::Profile::kFourBit ? fourb : mhlqi).push_back(s);
      std::printf(
          "%-14s %5.0f dBm %10.2f %9.2f %10.2f %9.1f%% %11.2fx\n",
          runner::profile_name(p).data(), power, s.cost.mean,
          s.cost.ci95_half, s.mean_depth.mean,
          s.delivery_ratio.mean * 100.0,
          s.mean_depth.mean > 0 ? s.cost.mean / s.mean_depth.mean : 0.0);
    }
  }

  std::printf("\n4B cost improvement over MultiHopLQI by power "
              "(paper: 29%% at 0 dBm down to 11%% at -20 dBm):\n");
  for (std::size_t i = 0; i < powers.size(); ++i) {
    std::printf("  %5.0f dBm: %+.1f%%\n", powers[i],
                (fourb[i].cost.mean / mhlqi[i].cost.mean - 1.0) * 100.0);
  }

  if (cli.json) {
    std::printf("%s\n", runner::describe_json(report).c_str());
    for (const auto& failure : report.failures) {
      std::printf("%s\n", runner::describe_json(failure).c_str());
    }
  }
  return 0;
}
