// Figure 2 — routing trees formed by CTP (10-entry table), MultiHopLQI,
// and CTP with an unrestricted link table, on the 85-node testbed.
//
// Paper values: cost 3.14 (CTP), 2.28 (MultiHopLQI), 1.86 (CTP
// unconstrained). The shape to reproduce: the link-table limit makes
// stock CTP build much deeper, costlier trees than the SAME estimator
// with an unbounded table; MultiHopLQI sits between them. We print each
// protocol's cost plus the depth distribution of the final tree (the
// "darker nodes mean longer paths" of the paper's figure).
//
//   usage: fig2_routing_trees [minutes=40] [seeds=3]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/experiment.hpp"
#include "stats/ascii_map.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct TreeResult {
  double cost = 0.0;
  double depth = 0.0;
  double delivery = 0.0;
  std::vector<int> depth_histogram;  // final tree of the last seed
  std::string map;                   // ASCII rendering of that tree
};

TreeResult run(runner::Profile profile, double minutes, int seeds) {
  TreeResult out;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig config;
    config.testbed = topology::mirage(rng);
    config.profile = profile;
    config.duration = sim::Duration::from_minutes(minutes);
    config.seed = seed;
    const auto r = runner::run_experiment(config);
    out.cost += r.cost;
    out.depth += r.mean_depth;
    out.delivery += r.delivery_ratio;
    if (s == seeds - 1) {
      std::vector<stats::AsciiMapEntry> entries;
      for (std::size_t i = 0; i < r.final_tree.depths.size(); ++i) {
        const int d = r.final_tree.depths[i];
        entries.push_back(stats::AsciiMapEntry{
            config.testbed.topology.nodes[i].position, d});
        if (d < 0) continue;
        if (static_cast<std::size_t>(d) >= out.depth_histogram.size()) {
          out.depth_histogram.resize(static_cast<std::size_t>(d) + 1, 0);
        }
        out.depth_histogram[static_cast<std::size_t>(d)] += 1;
      }
      out.map = stats::render_ascii_map(entries);
    }
  }
  out.cost /= seeds;
  out.depth /= seeds;
  out.delivery /= seeds;
  return out;
}

void print(const char* name, const TreeResult& r) {
  std::printf("%-20s cost=%.2f  mean depth=%.2f  delivery=%.1f%%\n", name,
              r.cost, r.depth, r.delivery * 100.0);
  std::printf("  depth histogram (final tree):");
  for (std::size_t d = 0; d < r.depth_histogram.size(); ++d) {
    std::printf("  %zu:%d", d, r.depth_histogram[d]);
  }
  std::printf("\n%s\n", r.map.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 40.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf(
      "=== Figure 2: routing trees on the 85-node testbed ===\n"
      "paper costs: CTP 3.14, MultiHopLQI 2.28, CTP-unconstrained 1.86\n"
      "%.0f min x %d seeds\n\n",
      minutes, seeds);

  const auto ctp = run(runner::Profile::kCtpT2, minutes, seeds);
  const auto lqi = run(runner::Profile::kMultihopLqi, minutes, seeds);
  const auto unc = run(runner::Profile::kCtpUnconstrained, minutes, seeds);

  print("CTP (10-entry)", ctp);
  print("MultiHopLQI", lqi);
  print("CTP unconstrained", unc);

  std::printf(
      "\nshape check: unconstrained CTP should beat MultiHopLQI, which\n"
      "should beat table-limited CTP on cost.\n"
      "  CTP/unconstrained cost ratio: %.2fx (paper 1.69x)\n"
      "  MultiHopLQI/unconstrained   : %.2fx (paper 1.23x)\n",
      unc.cost > 0 ? ctp.cost / unc.cost : 0.0,
      unc.cost > 0 ? lqi.cost / unc.cost : 0.0);
  return 0;
}
