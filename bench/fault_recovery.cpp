// Fault-recovery campaign: how collection protocols survive node
// crashes, reboots and link blackouts.
//
// Each trial runs the Mirage testbed with a seeded, deterministic fault
// plan: a handful of random non-root nodes crash mid-run and reboot two
// minutes later, a few short links black out completely for a minute,
// and (scenario rows) the root's entire first-hop neighborhood crashes
// at once. The numbers that matter:
//   * delivery of packets generated DURING an outage window (how much
//     the damage hurts while it is happening)
//   * delivery of packets generated AFTER the last window (does the
//     network actually heal)
//   * time-to-reroute: how long live nodes spend routeless before the
//     estimator + routing layer steer around the damage
//
// The whole campaign is deterministic: identical output for any
// --threads value (each trial derives its fault plan and every RNG
// stream from its own seed).
//
//   usage: fault_recovery [minutes=25] [seeds=3] [--threads N]
//          [--journal FILE] [--max-trial-ms N] [--retries N]
//          [--trace FILE] [--trace-level L] [--trace-nodes a,b,c]
//          [--json]
//          [--status-json FILE] [--status-interval-ms N] [--profile-phases]
//
// With --journal, completed trials are checkpointed durably; killing
// the process mid-campaign and relaunching with the same arguments
// resumes from the journal and prints a summary bit-identical to an
// uninterrupted run (the CI resilience job exercises exactly this).
// With --trace BASE, every trial streams its telemetry to its own
// BASE-t<index>-s<seed>.jsonl file. --json appends machine-readable
// summary lines (fourbit.summary/1) after the human table; the default
// output is unchanged, so existing diffs of stdout keep working.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "stats/export.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Scenario {
  std::string label;
  runner::FaultSpec faults;
};

std::vector<Scenario> make_scenarios(double minutes) {
  // Faults fire in the middle third of the run: late enough that the
  // tree has formed, early enough that recovery is observable.
  const sim::Time w0 = sim::Time::from_us(
      static_cast<std::int64_t>(minutes * 60e6 / 3.0));
  const sim::Time w1 = sim::Time::from_us(
      static_cast<std::int64_t>(minutes * 60e6 * 2.0 / 3.0));

  std::vector<Scenario> scenarios;

  runner::FaultSpec crashes;
  crashes.node_crashes = 6;
  crashes.crash_downtime = sim::Duration::from_seconds(120.0);
  crashes.window_start = w0;
  crashes.window_end = w1;
  scenarios.push_back({"6 crashes (reboot after 120 s)", crashes});

  runner::FaultSpec blackout;
  blackout.link_outages = 4;
  blackout.outage_duration = sim::Duration::from_seconds(60.0);
  blackout.outage_loss = 1.0;
  blackout.window_start = w0;
  blackout.window_end = w1;
  scenarios.push_back({"4 link blackouts (60 s, total loss)", blackout});

  runner::FaultSpec combined;
  combined.node_crashes = 4;
  combined.crash_downtime = sim::Duration::from_seconds(120.0);
  combined.link_outages = 3;
  combined.outage_duration = sim::Duration::from_seconds(60.0);
  combined.window_start = w0;
  combined.window_end = w1;
  scenarios.push_back({"combined (4 crashes + 3 blackouts)", combined});

  runner::FaultSpec root_region;
  root_region.root_region_crash = true;
  root_region.crash_downtime = sim::Duration::from_seconds(120.0);
  root_region.window_start = w0;
  root_region.window_end = w1;
  scenarios.push_back({"root first-hop region crash", root_region});

  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runner::consume_campaign_cli(argc, argv);
  const double minutes = argc > 1 ? std::atof(argv[1]) : 25.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("=== Fault recovery (Mirage, 4B, %.0f min x %d seeds) ===\n\n",
              minutes, seeds);

  const auto scenarios = make_scenarios(minutes);
  const auto profiles = std::vector<runner::Profile>{
      runner::Profile::kFourBit, runner::Profile::kMultihopLqi};

  // One flat trial list -> one pool; (scenario, profile, seed) cells are
  // recovered from the index afterwards.
  std::vector<runner::ExperimentConfig> trials;
  for (const auto& scenario : scenarios) {
    for (const auto profile : profiles) {
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 9100 + static_cast<std::uint64_t>(s) * 31;
        sim::Rng rng{seed};
        runner::ExperimentConfig cfg;
        cfg.testbed = topology::mirage(rng);
        cfg.profile = profile;
        cfg.duration = sim::Duration::from_minutes(minutes);
        cfg.seed = seed;
        cfg.faults = scenario.faults;
        trials.push_back(std::move(cfg));
      }
    }
  }

  const auto report =
      runner::run_campaign(trials, cli, runner::stderr_progress());
  if (const auto note = runner::describe(report); !note.empty()) {
    std::fprintf(stderr, "%s", note.c_str());
  }
  const auto& results = report.results;

  std::printf("%-36s %-12s %9s %9s %9s %9s %9s\n", "scenario", "profile",
              "dlv", "dlv@out", "dlv@post", "reroute", "refill");
  std::printf("%-36s %-12s %9s %9s %9s %9s %9s\n", "", "", "", "", "",
              "mean s", "mean s");
  std::vector<std::string> json_lines;  // printed after the table
  std::size_t index = 0;
  for (const auto& scenario : scenarios) {
    for (const auto profile : profiles) {
      std::vector<runner::ExperimentResult> cell(
          results.begin() + static_cast<std::ptrdiff_t>(index),
          results.begin() + static_cast<std::ptrdiff_t>(index + seeds));
      index += static_cast<std::size_t>(seeds);

      const auto summary = runner::summarize(cell);
      if (cli.json) {
        // Per-cell summary, tagged with the sweep coordinates. Keys are
        // additive on the fourbit.summary/1 "campaign" object.
        std::string line = runner::describe_json(summary);
        line.insert(1, "\"label\":\"" + stats::json_escape(scenario.label) +
                           "\",\"profile\":\"" +
                           std::string{runner::profile_name(profile)} +
                           "\",");
        json_lines.push_back(std::move(line));
      }
      double post = 0.0, reroute = 0.0, refill = 0.0;
      std::size_t post_n = 0, reroute_n = 0, refill_n = 0;
      for (const auto& r : cell) {
        if (r.generated_post_outage > 0) {
          post += r.delivery_post_outage;
          ++post_n;
        }
        if (r.max_time_to_reroute_s > 0.0) {
          reroute += r.mean_time_to_reroute_s;
          ++reroute_n;
        }
        if (r.mean_table_refill_s > 0.0) {
          refill += r.mean_table_refill_s;
          ++refill_n;
        }
      }
      std::printf("%-36s %-12s %8.1f%% %8.1f%% %8.1f%% %9.1f %9.1f\n",
                  scenario.label.c_str(),
                  runner::profile_name(profile).data(),
                  summary.delivery_ratio.mean * 100.0,
                  summary.delivery_during_outage.mean * 100.0,
                  post_n > 0 ? post / static_cast<double>(post_n) * 100.0
                             : 0.0,
                  reroute_n > 0 ? reroute / static_cast<double>(reroute_n)
                                : 0.0,
                  refill_n > 0 ? refill / static_cast<double>(refill_n)
                              : 0.0);
    }
  }

  std::printf("\nExpected shape: 4B reroutes around crashed parents "
              "within tens of seconds (eviction after repeated retx "
              "failure); MultiHopLQI has no datapath feedback and wedges "
              "on a dead parent until its next beacon-driven switch.\n");

  if (cli.json) {
    std::printf("%s\n", runner::describe_json(report).c_str());
    for (const auto& line : json_lines) std::printf("%s\n", line.c_str());
    for (const auto& failure : report.failures) {
      std::printf("%s\n", runner::describe_json(failure).c_str());
    }
  }
  return 0;
}
