// Channel scaling benchmark: packets/sec through the shared medium at
// N = 50 / 200 / 800 radios, fast path (link cache + culling + pooled
// frames) vs the slow reference path.
//
// The workload is the channel's steady-state job in a collection run:
// every radio wakes on its own period, samples CCA (busy_at), and puts a
// 40-byte frame on the air if idle — enough concurrency that the
// interference cross-product runs, and every delivery exercises the
// SINR/PRR/LQI pipeline. Both paths must deliver the SAME number of
// frames (bit-identical model); the benchmark fails loudly if not.
//
// Output is BENCH_channel.json. With --check BASELINE, the measured
// fast/slow speedup at each N is compared against the checked-in
// baseline and the run exits nonzero if any N regressed below 80% of it
// — the CI perf-smoke gate. Speedup ratios, not absolute frame rates,
// are compared: ratios transfer across machines, wall-clock does not.
// A final pair of cells re-runs the largest N with telemetry at debug
// level (one flight-recorder write per frame); --check additionally
// gates that overhead at 10%.
//
//   usage: channel_scaling [--nodes 50,200,800] [--seconds S]
//                          [--out BENCH_channel.json] [--check BASELINE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "phy/channel.hpp"
#include "phy/hardware.hpp"
#include "phy/interference.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

using namespace fourbit;

namespace {

constexpr std::size_t kFrameBytes = 40;
constexpr double kPeriodSeconds = 0.05;  // per-radio transmit period

struct RunResult {
  std::size_t nodes = 0;
  bool fast = false;
  std::uint64_t frames = 0;
  std::uint64_t deliveries = 0;
  double wall_s = 0.0;

  [[nodiscard]] double frames_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
};

/// One benchmark cell: N radios on a 30 m grid, each on a periodic
/// CCA-then-transmit tick, for `seconds` of simulated time. `level`
/// dials the telemetry context: kInfo (the default) records no
/// per-frame events, kDebug pays one flight-recorder ring write per
/// frame — the telemetry-overhead cells compare the two.
RunResult run_cell(std::size_t n, bool fast, double seconds,
                   sim::TraceLevel level = sim::TraceLevel::kInfo) {
  sim::Simulator sim;
  sim.telemetry().set_level(level);
  phy::PhyConfig phy;
  phy.use_link_cache = fast;
  phy::Channel channel{sim, phy, phy::PropagationConfig{},
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{4242}};

  RunResult out;
  out.nodes = n;
  out.fast = fast;

  std::vector<std::unique_ptr<phy::Radio>> radios;
  radios.reserve(n);
  const std::size_t cols = 16;  // dense rows: plenty of in-range pairs
  for (std::size_t i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        channel, NodeId{static_cast<std::uint16_t>(i + 1)},
        Position{static_cast<double>(i % cols) * 30.0,
                 static_cast<double>(i / cols) * 30.0},
        phy::HardwareProfile{}, PowerDbm{0.0}));
    radios.back()->set_rx_handler(
        [&out](std::span<const std::uint8_t>, const phy::RxInfo&) {
          ++out.deliveries;
        });
  }

  const auto end = sim::Time::from_us(
      static_cast<std::int64_t>(seconds * 1e6));
  const auto period = sim::Duration::from_seconds(kPeriodSeconds);

  // Self-rescheduling per-radio tick; phases spread over one period so
  // transmissions interleave instead of colliding en masse.
  std::function<void(std::size_t)> tick = [&](std::size_t i) {
    phy::Radio& r = *radios[i];
    if (r.channel_clear() && !r.transmitting()) {
      std::vector<std::uint8_t> frame(kFrameBytes);
      frame[0] = static_cast<std::uint8_t>(i);
      r.transmit(std::move(frame), nullptr);
    }
    const auto next = sim.now() + period;
    if (next < end) sim.schedule_at(next, [&tick, i] { tick(i); });
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto phase = sim::Duration::from_us(static_cast<std::int64_t>(
        kPeriodSeconds * 1e6 * static_cast<double>(i) /
        static_cast<double>(n)));
    sim.schedule_at(sim::Time{} + phase, [&tick, i] { tick(i); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.frames = channel.frames_transmitted();
  return out;
}

void write_json(const char* path, const std::vector<RunResult>& results,
                const std::vector<RunResult>& telemetry, double seconds) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"channel_scaling\",\n");
  std::fprintf(f, "  \"frame_bytes\": %zu,\n", kFrameBytes);
  std::fprintf(f, "  \"sim_seconds\": %.1f,\n", seconds);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"mode\": \"%s\", \"frames\": %llu, "
                 "\"deliveries\": %llu, \"wall_s\": %.4f, "
                 "\"frames_per_s\": %.1f}%s\n",
                 r.nodes, r.fast ? "fast" : "slow",
                 static_cast<unsigned long long>(r.frames),
                 static_cast<unsigned long long>(r.deliveries), r.wall_s,
                 r.frames_per_s(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedups\": [\n");
  // results arrive as (slow, fast) pairs per N.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const double slow = results[i].frames_per_s();
    const double speedup =
        slow > 0.0 ? results[i + 1].frames_per_s() / slow : 0.0;
    std::fprintf(f, "    {\"nodes\": %zu, \"speedup\": %.3f}%s\n",
                 results[i].nodes, speedup,
                 i + 3 < results.size() ? "," : "");
  }
  if (!telemetry.empty()) {
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"telemetry\": [\n");
    // (untraced, traced-at-kDebug) pairs per N; ratio = traced/untraced
    // throughput (1.0 = free, 0.9 = 10% overhead).
    for (std::size_t i = 0; i + 1 < telemetry.size(); i += 2) {
      const double plain = telemetry[i].frames_per_s();
      const double ratio =
          plain > 0.0 ? telemetry[i + 1].frames_per_s() / plain : 0.0;
      std::fprintf(f, "    {\"nodes\": %zu, \"traced_ratio\": %.3f}%s\n",
                   telemetry[i].nodes, ratio,
                   i + 3 < telemetry.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Pulls {nodes, speedup} pairs out of a file written by write_json (or
/// a hand-maintained baseline in the same line format). Not a JSON
/// parser: it scans for the exact line shape this tool emits.
std::vector<std::pair<std::size_t, double>> read_speedups(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    std::exit(1);
  }
  std::vector<std::pair<std::size_t, double>> out;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strstr(line, "\"speedup\"") == nullptr) continue;
    std::size_t nodes = 0;
    double speedup = 0.0;
    if (std::sscanf(line, " {\"nodes\": %zu, \"speedup\": %lf", &nodes,
                    &speedup) == 2) {
      out.emplace_back(nodes, speedup);
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> node_counts{50, 200, 800};
  double seconds = 10.0;
  const char* out_path = "BENCH_channel.json";
  const char* baseline_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      node_counts.clear();
      std::string list = next();
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        node_counts.push_back(static_cast<std::size_t>(std::atoll(tok)));
      }
    } else if (arg == "--seconds") {
      seconds = std::atof(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      baseline_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: channel_scaling [--nodes 50,200,800] "
                   "[--seconds S] [--out FILE] [--check BASELINE]\n");
      return 2;
    }
  }

  std::printf("=== Channel scaling (%.0f sim-s, %zu-byte frames) ===\n\n",
              seconds, kFrameBytes);
  std::printf("%6s %6s %10s %12s %10s %12s\n", "nodes", "mode", "frames",
              "deliveries", "wall s", "frames/s");

  std::vector<RunResult> results;
  bool deliveries_match = true;
  for (const std::size_t n : node_counts) {
    const RunResult slow = run_cell(n, /*fast=*/false, seconds);
    const RunResult fast = run_cell(n, /*fast=*/true, seconds);
    for (const RunResult& r : {slow, fast}) {
      std::printf("%6zu %6s %10llu %12llu %10.3f %12.1f\n", r.nodes,
                  r.fast ? "fast" : "slow",
                  static_cast<unsigned long long>(r.frames),
                  static_cast<unsigned long long>(r.deliveries), r.wall_s,
                  r.frames_per_s());
    }
    const double speedup = slow.frames_per_s() > 0.0
                               ? fast.frames_per_s() / slow.frames_per_s()
                               : 0.0;
    std::printf("%6s %6s %46.2fx\n", "", "", speedup);
    if (fast.deliveries != slow.deliveries ||
        fast.frames != slow.frames) {
      deliveries_match = false;
    }
    results.push_back(slow);
    results.push_back(fast);
  }

  // Telemetry overhead at the largest N: the fast path once more with
  // the context at kDebug, where every frame pays a flight-recorder ring
  // write (kPhyFrame) on top of the usual counter increment. The ratio
  // of traced to untraced throughput is the enabled-path overhead; the
  // disabled path is a single branch (see BM_TelemetryDisabled).
  std::vector<RunResult> telemetry;
  bool telemetry_match = true;
  if (!node_counts.empty()) {
    const std::size_t n = node_counts.back();
    const RunResult plain = run_cell(n, /*fast=*/true, seconds);
    const RunResult traced =
        run_cell(n, /*fast=*/true, seconds, sim::TraceLevel::kDebug);
    const double ratio = plain.frames_per_s() > 0.0
                             ? traced.frames_per_s() / plain.frames_per_s()
                             : 0.0;
    std::printf("\ntelemetry overhead (fast path, N=%zu, ring write per "
                "frame at debug level):\n"
                "  untraced %.1f frames/s, traced %.1f frames/s "
                "(%.1f%% overhead)\n",
                n, plain.frames_per_s(), traced.frames_per_s(),
                (1.0 - ratio) * 100.0);
    telemetry_match = traced.frames == plain.frames &&
                      traced.deliveries == plain.deliveries;
    telemetry.push_back(plain);
    telemetry.push_back(traced);
  }

  write_json(out_path, results, telemetry, seconds);
  std::printf("\nwrote %s\n", out_path);

  if (!telemetry_match) {
    std::fprintf(stderr,
                 "FAIL: tracing changed frame/delivery counts — telemetry "
                 "must be observation-only\n");
    return 1;
  }

  if (!deliveries_match) {
    std::fprintf(stderr,
                 "FAIL: fast and slow paths disagree on frame/delivery "
                 "counts — the determinism contract is broken\n");
    return 1;
  }

  if (baseline_path != nullptr) {
    const auto baseline = read_speedups(baseline_path);
    const auto measured = read_speedups(out_path);
    bool ok = true;
    for (const auto& [nodes, base] : baseline) {
      for (const auto& [mnodes, got] : measured) {
        if (mnodes != nodes) continue;
        const double floor = 0.8 * base;
        const bool pass = got >= floor;
        std::printf("check N=%zu: speedup %.2fx vs baseline %.2fx "
                    "(floor %.2fx) %s\n",
                    nodes, got, base, floor, pass ? "OK" : "REGRESSED");
        ok = ok && pass;
      }
    }
    // Absolute telemetry gate: a debug-level trace of the phy hot path
    // must cost no more than ~10% throughput (the design budget for the
    // enabled path; the disabled path is a branch and unmeasurable
    // here).
    for (std::size_t i = 0; i + 1 < telemetry.size(); i += 2) {
      const double plain = telemetry[i].frames_per_s();
      const double ratio =
          plain > 0.0 ? telemetry[i + 1].frames_per_s() / plain : 0.0;
      const bool pass = ratio >= 0.90;
      std::printf("check N=%zu: traced/untraced ratio %.3f "
                  "(floor 0.900) %s\n",
                  telemetry[i].nodes, ratio, pass ? "OK" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) {
      std::fprintf(stderr, "FAIL: fast-path speedup or telemetry "
                           "overhead regressed against %s\n",
                   baseline_path);
      return 1;
    }
  }
  return 0;
}
