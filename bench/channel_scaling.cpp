// Channel scaling benchmark: packets/sec through the shared medium,
// fast path (link cache + culling + pooled frames) vs the slow
// reference path at N = 50 / 200 / 800 radios, plus sparse spatial
// cells (use_spatial_index) at city-scale N = 2000 / 10000 — the
// populations the dense N x N matrices cannot reach.
//
// The workload is the channel's steady-state job in a collection run:
// every radio wakes on its own period, samples CCA (busy_at), and puts a
// 40-byte frame on the air if idle — enough concurrency that the
// interference cross-product runs, and every delivery exercises the
// SINR/PRR/LQI pipeline. Paths must deliver the SAME number of frames
// (bit-identical model); the benchmark fails loudly if not. Sparse
// cells use a sqrt(N) x sqrt(N) grid at 100 m pitch (city-scale
// density); at N <= 2000 each sparse cell is followed by its dense twin
// and the frame/delivery counts are compared. Peak RSS is sampled right
// after each sparse cell — before the dense twin can raise the
// process high-water mark — and --max-rss-per-node-kb turns the
// per-node figure into a hard ceiling (the O(N·degree) memory gate).
//
// Output is BENCH_channel.json. With --check BASELINE, the measured
// fast/slow speedup at each N (and the sparse/fast throughput ratio at
// each sparse N with a dense twin) is compared against the checked-in
// baseline and the run exits nonzero if any regressed below 80% of it
// — the CI perf-smoke gate. Speedup ratios, not absolute frame rates,
// are compared: ratios transfer across machines, wall-clock does not.
// A final pair of cells re-runs the largest N with telemetry at debug
// level (one flight-recorder write per frame); --check additionally
// gates that overhead at 10%.
//
//   usage: channel_scaling [--nodes 50,200,800] [--seconds S]
//                          [--sparse-nodes 2000,10000]
//                          [--sparse-seconds S] [--max-rss-per-node-kb K]
//                          [--out BENCH_channel.json] [--check BASELINE]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <sys/resource.h>

#include "phy/channel.hpp"
#include "phy/hardware.hpp"
#include "phy/interference.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

using namespace fourbit;

namespace {

constexpr std::size_t kFrameBytes = 40;
constexpr double kPeriodSeconds = 0.05;  // per-radio transmit period
constexpr double kDensePitchM = 30.0;    // every pair in reception range
constexpr double kSparsePitchM = 100.0;  // city-scale density
// Sparse cells model a duty-cycled deployment: at 10k nodes the dense
// cells' 50 ms period would put hundreds of frames in the air at once
// (every receiver drowns; the interference cross-product, which is
// O(active² · degree), dwarfs the channel work being measured).
constexpr double kSparsePeriodSeconds = 0.5;

enum class Mode { kSlow, kFast, kSparse };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kSlow: return "slow";
    case Mode::kFast: return "fast";
    case Mode::kSparse: return "sparse";
  }
  return "?";
}

/// Process peak RSS in KB (ru_maxrss unit on Linux). A high-water mark:
/// sparse cells sample it before any dense twin runs.
double peak_rss_kb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss);
}

struct RunResult {
  std::size_t nodes = 0;
  Mode mode = Mode::kSlow;
  std::uint64_t frames = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events = 0;  // simulator events executed
  double wall_s = 0.0;
  double rss_kb_per_node = 0.0;  // sampled for sparse cells only

  [[nodiscard]] double frames_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
  [[nodiscard]] double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

/// One benchmark cell: N radios on a `cols`-wide grid of the given
/// pitch, each on a periodic CCA-then-transmit tick, for `seconds` of
/// simulated time. `level` dials the telemetry context: kInfo (the
/// default) records no per-frame events, kDebug pays one
/// flight-recorder ring write per frame — the telemetry-overhead cells
/// compare the two.
/// `fast_engine` toggles this PR's intra-trial speed layers as one
/// knob: the calendar event queue and the batched SNR→PRR/interference
/// kernels (true = fast configuration, false = heap + scalar reference).
/// Both produce bit-identical deliveries; the engine cells measure the
/// gap and the benchmark fails loudly if the counts ever diverge.
RunResult run_cell(std::size_t n, Mode mode, double seconds,
                   sim::TraceLevel level = sim::TraceLevel::kInfo,
                   std::size_t cols = 16, double pitch_m = kDensePitchM,
                   double period_s = kPeriodSeconds,
                   bool fast_engine = true) {
  sim::SimConfig sim_config;
  sim_config.use_calendar_queue = fast_engine;
  sim::Simulator sim{sim_config};
  sim.telemetry().set_level(level);
  phy::PhyConfig phy;
  phy.use_link_cache = mode != Mode::kSlow;
  phy.use_spatial_index = mode == Mode::kSparse;
  phy.use_batch_kernels = fast_engine;
  phy::Channel channel{sim, phy, phy::PropagationConfig{},
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{4242}};

  RunResult out;
  out.nodes = n;
  out.mode = mode;

  std::vector<std::unique_ptr<phy::Radio>> radios;
  radios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        channel, NodeId{static_cast<std::uint16_t>(i + 1)},
        Position{static_cast<double>(i % cols) * pitch_m,
                 static_cast<double>(i / cols) * pitch_m},
        phy::HardwareProfile{}, PowerDbm{0.0}));
    radios.back()->set_rx_handler(
        [&out](std::span<const std::uint8_t>, const phy::RxInfo&) {
          ++out.deliveries;
        });
  }

  const auto end = sim::Time::from_us(
      static_cast<std::int64_t>(seconds * 1e6));
  const auto period = sim::Duration::from_seconds(period_s);

  // Self-rescheduling per-radio tick; phases spread over one period so
  // transmissions interleave instead of colliding en masse. The frame
  // buffer is reused across ticks (transmit copies it), so the tick
  // itself costs no allocation.
  std::vector<std::uint8_t> frame(kFrameBytes);
  std::function<void(std::size_t)> tick = [&](std::size_t i) {
    phy::Radio& r = *radios[i];
    if (r.channel_clear() && !r.transmitting()) {
      frame[0] = static_cast<std::uint8_t>(i);
      r.transmit(frame, nullptr);
    }
    const auto next = sim.now() + period;
    if (next < end) sim.schedule_at(next, [&tick, i] { tick(i); });
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto phase = sim::Duration::from_us(static_cast<std::int64_t>(
        period_s * 1e6 * static_cast<double>(i) /
        static_cast<double>(n)));
    sim.schedule_at(sim::Time{} + phase, [&tick, i] { tick(i); });
  }

  // Steady-state window: the first period is warm-up — the lazy link
  // cache rebuild (O(N²) RNG draws on the dense path, ~0.7 s at
  // N=2000), pool growth, and arena growth all land on the first round
  // of transmissions. A sentinel at t=period starts the clock after
  // that, so the cell measures dispatch throughput, not setup. (Sub-
  // period cells keep the whole run: nothing reached steady state.)
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t frames0 = 0;
  std::uint64_t events0 = 0;
  if (seconds > period_s) {
    sim.schedule_at(sim::Time{} + period, [&] {
      t0 = std::chrono::steady_clock::now();
      frames0 = channel.frames_transmitted();
      events0 = sim.events_executed();
    });
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.frames = channel.frames_transmitted() - frames0;
  out.events = sim.events_executed() - events0;
  return out;
}

/// One engine cell: the same workload run with the reference engine
/// (binary-heap queue, scalar per-receiver kernels) and the fast
/// configuration (calendar queue, batch kernels). Deliveries must be
/// bit-identical; the speedup is the PR's end-to-end intra-trial win.
struct EngineCell {
  RunResult reference;
  RunResult fast;

  [[nodiscard]] double speedup() const {
    return reference.frames_per_s() > 0.0
               ? fast.frames_per_s() / reference.frames_per_s()
               : 0.0;
  }
};

/// A sparse cell paired with its optional dense twin (run only at
/// N <= 2000, where the N x N matrices still fit).
struct SparseCell {
  RunResult sparse;
  RunResult fast;
  bool has_fast = false;

  [[nodiscard]] double ratio() const {
    return has_fast && fast.frames_per_s() > 0.0
               ? sparse.frames_per_s() / fast.frames_per_s()
               : 0.0;
  }
};

void write_json(const char* path, const std::vector<RunResult>& results,
                const std::vector<SparseCell>& sparse,
                const std::vector<EngineCell>& engine,
                const std::vector<RunResult>& telemetry, double seconds) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"channel_scaling\",\n");
  std::fprintf(f, "  \"frame_bytes\": %zu,\n", kFrameBytes);
  std::fprintf(f, "  \"sim_seconds\": %.1f,\n", seconds);
  std::fprintf(f, "  \"results\": [\n");
  std::vector<RunResult> all = results;
  for (const SparseCell& c : sparse) {
    all.push_back(c.sparse);
    if (c.has_fast) all.push_back(c.fast);
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    const RunResult& r = all[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"mode\": \"%s\", \"frames\": %llu, "
                 "\"deliveries\": %llu, \"wall_s\": %.4f, "
                 "\"frames_per_s\": %.1f, \"rss_kb_per_node\": %.1f}%s\n",
                 r.nodes, mode_name(r.mode),
                 static_cast<unsigned long long>(r.frames),
                 static_cast<unsigned long long>(r.deliveries), r.wall_s,
                 r.frames_per_s(), r.rss_kb_per_node,
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedups\": [\n");
  // results arrive as (slow, fast) pairs per N.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const double slow = results[i].frames_per_s();
    const double speedup =
        slow > 0.0 ? results[i + 1].frames_per_s() / slow : 0.0;
    std::fprintf(f, "    {\"nodes\": %zu, \"speedup\": %.3f}%s\n",
                 results[i].nodes, speedup,
                 i + 3 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sparse\": [\n");
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    const SparseCell& c = sparse[i];
    if (c.has_fast) {
      std::fprintf(f,
                   "    {\"nodes\": %zu, \"sparse_fast_ratio\": %.3f, "
                   "\"rss_kb_per_node\": %.1f}%s\n",
                   c.sparse.nodes, c.ratio(), c.sparse.rss_kb_per_node,
                   i + 1 < sparse.size() ? "," : "");
    } else {
      std::fprintf(f,
                   "    {\"nodes\": %zu, \"rss_kb_per_node\": %.1f}%s\n",
                   c.sparse.nodes, c.sparse.rss_kb_per_node,
                   i + 1 < sparse.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"engine\": [\n");
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const EngineCell& c = engine[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"fast_config_speedup\": %.3f, "
                 "\"events_per_s\": %.1f, \"reference_events_per_s\": "
                 "%.1f}%s\n",
                 c.fast.nodes, c.speedup(), c.fast.events_per_s(),
                 c.reference.events_per_s(),
                 i + 1 < engine.size() ? "," : "");
  }
  if (!telemetry.empty()) {
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"telemetry\": [\n");
    // (untraced, traced-at-kDebug) pairs per N; ratio = traced/untraced
    // throughput (1.0 = free, 0.9 = 10% overhead).
    for (std::size_t i = 0; i + 1 < telemetry.size(); i += 2) {
      const double plain = telemetry[i].frames_per_s();
      const double ratio =
          plain > 0.0 ? telemetry[i + 1].frames_per_s() / plain : 0.0;
      std::fprintf(f, "    {\"nodes\": %zu, \"traced_ratio\": %.3f}%s\n",
                   telemetry[i].nodes, ratio,
                   i + 3 < telemetry.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Pulls {nodes, value} pairs for lines carrying `key` out of a file
/// written by write_json (or a hand-maintained baseline in the same
/// line format). Not a JSON parser: it scans for the exact line shape
/// this tool emits.
std::vector<std::pair<std::size_t, double>> read_metric(const char* path,
                                                        const char* key) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    std::exit(1);
  }
  char pattern[128];
  std::snprintf(pattern, sizeof pattern, "\"%s\"", key);
  char format[128];
  std::snprintf(format, sizeof format, " {\"nodes\": %%zu, \"%s\": %%lf",
                key);
  std::vector<std::pair<std::size_t, double>> out;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strstr(line, pattern) == nullptr) continue;
    std::size_t nodes = 0;
    double value = 0.0;
    if (std::sscanf(line, format, &nodes, &value) == 2) {
      out.emplace_back(nodes, value);
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> node_counts{50, 200, 800};
  std::vector<std::size_t> sparse_counts{2000, 10000};
  std::vector<std::size_t> engine_counts{2000, 10000};
  double seconds = 10.0;
  double sparse_seconds = 2.0;
  // Long enough that the steady-state window dwarfs warm-up noise (the
  // PRR memo takes a few rounds to fill; a short window under-reports
  // the fast configuration).
  double engine_seconds = 4.0;
  double max_rss_kb_per_node = 0.0;  // 0 = report only, no gate
  const char* out_path = "BENCH_channel.json";
  const char* baseline_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_list = [&](std::vector<std::size_t>& counts) {
      counts.clear();
      std::string list = next();
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        counts.push_back(static_cast<std::size_t>(std::atoll(tok)));
      }
    };
    if (arg == "--nodes") {
      parse_list(node_counts);
    } else if (arg == "--sparse-nodes") {
      parse_list(sparse_counts);
    } else if (arg == "--seconds") {
      seconds = std::atof(next());
    } else if (arg == "--sparse-seconds") {
      sparse_seconds = std::atof(next());
    } else if (arg == "--engine-nodes") {
      parse_list(engine_counts);
    } else if (arg == "--engine-seconds") {
      engine_seconds = std::atof(next());
    } else if (arg == "--max-rss-per-node-kb") {
      max_rss_kb_per_node = std::atof(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      baseline_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: channel_scaling [--nodes 50,200,800] "
                   "[--seconds S] [--sparse-nodes 2000,10000] "
                   "[--sparse-seconds S] [--engine-nodes 2000,10000] "
                   "[--engine-seconds S] [--max-rss-per-node-kb K] "
                   "[--out FILE] [--check BASELINE]\n");
      return 2;
    }
  }

  std::printf("=== Channel scaling (%.0f sim-s, %zu-byte frames) ===\n\n",
              seconds, kFrameBytes);
  std::printf("%6s %6s %10s %12s %10s %12s\n", "nodes", "mode", "frames",
              "deliveries", "wall s", "frames/s");

  std::vector<RunResult> results;
  bool deliveries_match = true;
  for (const std::size_t n : node_counts) {
    const RunResult slow = run_cell(n, Mode::kSlow, seconds);
    const RunResult fast = run_cell(n, Mode::kFast, seconds);
    for (const RunResult& r : {slow, fast}) {
      std::printf("%6zu %6s %10llu %12llu %10.3f %12.1f\n", r.nodes,
                  mode_name(r.mode),
                  static_cast<unsigned long long>(r.frames),
                  static_cast<unsigned long long>(r.deliveries), r.wall_s,
                  r.frames_per_s());
    }
    const double speedup = slow.frames_per_s() > 0.0
                               ? fast.frames_per_s() / slow.frames_per_s()
                               : 0.0;
    std::printf("%6s %6s %46.2fx\n", "", "", speedup);
    if (fast.deliveries != slow.deliveries ||
        fast.frames != slow.frames) {
      deliveries_match = false;
    }
    results.push_back(slow);
    results.push_back(fast);
  }

  // Sparse spatial cells: sqrt(N) x sqrt(N) grid at city-scale pitch.
  // The sparse run goes first and its peak RSS is sampled immediately —
  // ru_maxrss is a process high-water mark, so the dense twin (whose
  // N x N matrices dwarf the sparse rows) must not run before the
  // sample. At N <= 2000 the twin then checks frame/delivery equality
  // and yields the sparse/fast throughput ratio for the baseline gate.
  // Since timing went steady-state (warm-up window), this ratio tells
  // the truth: sparse trades ~9x per-frame throughput (every far-pair
  // interference term recomputes its propagation draws) for O(N·degree)
  // memory — the old ~1.1x figure was the dense twin's one-time O(N²)
  // freeze billed to its wall clock, not a steady-state win.
  std::vector<SparseCell> sparse_cells;
  bool rss_ok = true;
  for (const std::size_t n : sparse_counts) {
    const auto side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    SparseCell cell;
    cell.sparse = run_cell(n, Mode::kSparse, sparse_seconds,
                           sim::TraceLevel::kInfo, side, kSparsePitchM,
                           kSparsePeriodSeconds);
    cell.sparse.rss_kb_per_node = peak_rss_kb() / static_cast<double>(n);
    std::printf("%6zu %6s %10llu %12llu %10.3f %12.1f  (peak rss "
                "%.1f KB/node)\n",
                n, mode_name(Mode::kSparse),
                static_cast<unsigned long long>(cell.sparse.frames),
                static_cast<unsigned long long>(cell.sparse.deliveries),
                cell.sparse.wall_s, cell.sparse.frames_per_s(),
                cell.sparse.rss_kb_per_node);
    if (max_rss_kb_per_node > 0.0 &&
        cell.sparse.rss_kb_per_node > max_rss_kb_per_node) {
      std::fprintf(stderr,
                   "FAIL: sparse N=%zu peak RSS %.1f KB/node exceeds the "
                   "%.1f KB/node ceiling\n",
                   n, cell.sparse.rss_kb_per_node, max_rss_kb_per_node);
      rss_ok = false;
    }
    if (n <= 2000) {
      cell.fast = run_cell(n, Mode::kFast, sparse_seconds,
                           sim::TraceLevel::kInfo, side, kSparsePitchM,
                           kSparsePeriodSeconds);
      cell.has_fast = true;
      std::printf("%6zu %6s %10llu %12llu %10.3f %12.1f\n", n,
                  mode_name(Mode::kFast),
                  static_cast<unsigned long long>(cell.fast.frames),
                  static_cast<unsigned long long>(cell.fast.deliveries),
                  cell.fast.wall_s, cell.fast.frames_per_s());
      std::printf("%6s %6s %45.2fx  (sparse/fast)\n", "", "",
                  cell.ratio());
      if (cell.fast.deliveries != cell.sparse.deliveries ||
          cell.fast.frames != cell.sparse.frames) {
        deliveries_match = false;
      }
    }
    sparse_cells.push_back(std::move(cell));
  }

  // Engine cells: the whole workload twice per N — once with the
  // reference engine (binary-heap event queue + scalar per-receiver
  // kernels), once with the fast configuration (calendar queue + batch
  // kernels). At N=2000 the cell runs the *dense* cached path at the
  // dense cells' 50 ms period: with every pair memoized in the gain
  // matrices, the wall clock is event dispatch plus the interference
  // and SNR→PRR passes — the layers this knob toggles. (On the sparse
  // path the same cell spends ~75% of its time recomputing
  // sub-cutoff-pair propagation losses — two RNG forks and two normal
  // draws per far interferer — which no engine layer touches; that is
  // the medium's cost, not the engine's.) Past N=2000 the dense
  // matrices are unaffordable, so the cell switches to the sparse path
  // at its duty-cycled period; its events/s is the "event-rate past
  // N=10k" figure rather than a speedup gate.
  std::vector<EngineCell> engine_cells;
  for (const std::size_t n : engine_counts) {
    const auto side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    const bool dense = n <= 2000;
    const Mode mode = dense ? Mode::kFast : Mode::kSparse;
    const double period = dense ? kPeriodSeconds : kSparsePeriodSeconds;
    EngineCell cell;
    cell.reference =
        run_cell(n, mode, engine_seconds, sim::TraceLevel::kInfo,
                 side, kSparsePitchM, period, false);
    cell.fast =
        run_cell(n, mode, engine_seconds, sim::TraceLevel::kInfo,
                 side, kSparsePitchM, period, true);
    std::printf("\nengine N=%zu (%s path, %.0f ms period, %.1f sim-s):\n"
                "  reference %10.1f frames/s %12.1f events/s\n"
                "  fast      %10.1f frames/s %12.1f events/s   %.2fx\n",
                n, mode_name(mode), period * 1e3, engine_seconds,
                cell.reference.frames_per_s(),
                cell.reference.events_per_s(), cell.fast.frames_per_s(),
                cell.fast.events_per_s(), cell.speedup());
    if (cell.fast.frames != cell.reference.frames ||
        cell.fast.deliveries != cell.reference.deliveries) {
      deliveries_match = false;
    }
    engine_cells.push_back(cell);
  }

  // Telemetry overhead at the largest N: the fast path once more with
  // the context at kDebug, where every frame pays a flight-recorder ring
  // write (kPhyFrame) on top of the usual counter increment. The ratio
  // of traced to untraced throughput is the enabled-path overhead; the
  // disabled path is a single branch (see BM_TelemetryDisabled).
  std::vector<RunResult> telemetry;
  bool telemetry_match = true;
  if (!node_counts.empty()) {
    const std::size_t n = node_counts.back();
    const RunResult plain = run_cell(n, Mode::kFast, seconds);
    const RunResult traced =
        run_cell(n, Mode::kFast, seconds, sim::TraceLevel::kDebug);
    const double ratio = plain.frames_per_s() > 0.0
                             ? traced.frames_per_s() / plain.frames_per_s()
                             : 0.0;
    std::printf("\ntelemetry overhead (fast path, N=%zu, ring write per "
                "frame at debug level):\n"
                "  untraced %.1f frames/s, traced %.1f frames/s "
                "(%.1f%% overhead)\n",
                n, plain.frames_per_s(), traced.frames_per_s(),
                (1.0 - ratio) * 100.0);
    telemetry_match = traced.frames == plain.frames &&
                      traced.deliveries == plain.deliveries;
    telemetry.push_back(plain);
    telemetry.push_back(traced);
  }

  write_json(out_path, results, sparse_cells, engine_cells, telemetry,
             seconds);
  std::printf("\nwrote %s\n", out_path);

  if (!rss_ok) return 1;

  if (!telemetry_match) {
    std::fprintf(stderr,
                 "FAIL: tracing changed frame/delivery counts — telemetry "
                 "must be observation-only\n");
    return 1;
  }

  if (!deliveries_match) {
    std::fprintf(stderr,
                 "FAIL: fast and slow paths disagree on frame/delivery "
                 "counts — the determinism contract is broken\n");
    return 1;
  }

  if (baseline_path != nullptr) {
    bool ok = true;
    // Each ratio kind gates independently, and only at the N values the
    // current invocation actually ran (CI's sparse-only pass measures no
    // fast/slow speedups, so those baseline entries are skipped there).
    for (const char* key :
         {"speedup", "sparse_fast_ratio", "fast_config_speedup"}) {
      const auto baseline = read_metric(baseline_path, key);
      const auto measured = read_metric(out_path, key);
      for (const auto& [nodes, base] : baseline) {
        for (const auto& [mnodes, got] : measured) {
          if (mnodes != nodes) continue;
          double floor = 0.8 * base;
          // The engine speedup additionally carries an absolute floor:
          // the fast configuration must beat the reference engine by
          // 1.5x end-to-end at N=2000 (the PR 8 acceptance bar), no
          // matter how conservative the ratio baseline is.
          if (std::strcmp(key, "fast_config_speedup") == 0 &&
              nodes == 2000 && floor < 1.5) {
            floor = 1.5;
          }
          const bool pass = got >= floor;
          std::printf("check N=%zu: %s %.2fx vs baseline %.2fx "
                      "(floor %.2fx) %s\n",
                      nodes, key, got, base, floor,
                      pass ? "OK" : "REGRESSED");
          ok = ok && pass;
        }
      }
    }
    // Absolute telemetry gate: a debug-level trace of the phy hot path
    // must cost no more than ~10% throughput (the design budget for the
    // enabled path; the disabled path is a branch and unmeasurable
    // here).
    for (std::size_t i = 0; i + 1 < telemetry.size(); i += 2) {
      const double plain = telemetry[i].frames_per_s();
      const double ratio =
          plain > 0.0 ? telemetry[i + 1].frames_per_s() / plain : 0.0;
      const bool pass = ratio >= 0.90;
      std::printf("check N=%zu: traced/untraced ratio %.3f "
                  "(floor 0.900) %s\n",
                  telemetry[i].nodes, ratio, pass ? "OK" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) {
      std::fprintf(stderr, "FAIL: fast-path speedup or telemetry "
                           "overhead regressed against %s\n",
                   baseline_path);
      return 1;
    }
  }
  return 0;
}
