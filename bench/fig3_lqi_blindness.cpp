// Figure 3 — physical-layer blindness to bursty packet loss.
//
// The paper's 12-hour MultiHopLQI run shows the PRR of link P->C falling
// from ~0.9 to ~0.6 between hours 4 and 6 with NO corresponding drop in
// the LQI of the packets C received — LQI is only measured on packets
// that arrive. Meanwhile the cumulative count of unacknowledged packets
// climbs steeply, because the protocol keeps using the degraded link.
//
// We reproduce the scenario in isolation: one CBR unicast link with a
// scheduled receiver-side interference burst from hour 4 to hour 6, and
// trace (a) PRR per bin, (b) mean LQI of received packets per bin,
// (c) cumulative unacked transmissions, and (d) what the 4B hybrid
// estimator's ETX would report from the ack bit — the signal LQI misses.
//
//   usage: fig3_lqi_blindness [hours=12]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "mac/csma.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "stats/time_series.hpp"

using namespace fourbit;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 12.0;

  sim::Simulator sim;
  sim::Rng rng{99};

  // Deterministic propagation (no shadowing) so the baseline PRR is a
  // clean ~0.9-0.95 "good link in its gray zone" as in the paper's trace.
  phy::PhyConfig phy_cfg;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;

  // The paper's link: decode quality is HIGH (LQI ~95-100) and the ~0.9
  // baseline PRR comes from whole-packet interference losses, not thermal
  // noise — which is exactly why LQI cannot see the degradation. A mild
  // interference floor runs the whole experiment; a strong burst between
  // hours 4 and 6 drops PRR toward 0.6.
  const NodeId sender_id{1};
  const NodeId receiver_id{2};
  std::vector<phy::ScheduledBurstInterference::Burst> bursts = {
      {receiver_id, sim::Time::from_us(0),
       sim::Time::from_us(0) + sim::Duration::from_hours(hours), 0.08},
      {receiver_id, sim::Time::from_us(0) + sim::Duration::from_hours(4.0),
       sim::Time::from_us(0) + sim::Duration::from_hours(6.0), 0.38},
  };
  phy::Channel channel{
      sim, phy_cfg, prop,
      std::make_unique<phy::ScheduledBurstInterference>(bursts),
      rng.fork("channel")};

  // Distance chosen so the thermal SNR sits near 2.9 dB — expected LQI
  // right around 100 with near-perfect thermal PRR. Found by an analytic
  // search with throwaway probe radios (the propagation model caches per
  // node pair, so each probe distance uses a fresh id).
  phy::Radio sender{channel, sender_id, Position{0.0, 0.0},
                    phy::HardwareProfile{}, PowerDbm{0.0}};
  double d = 5.0;
  for (double trial = 5.0; trial < 200.0; trial += 0.25) {
    phy::Radio probe{channel,
                     NodeId{static_cast<std::uint16_t>(1000 + trial * 4)},
                     Position{trial, 0.0}, phy::HardwareProfile{},
                     PowerDbm{0.0}};
    if (channel.snr_db(sender, probe) <= 2.9) {
      d = trial;
      break;
    }
  }
  phy::Radio receiver{channel, receiver_id, Position{d, 0.0},
                      phy::HardwareProfile{}, PowerDbm{0.0}};
  std::printf("link distance %.2f m, analytic PRR %.3f\n\n", d,
              channel.mean_prr(sender, receiver, 40));

  mac::CsmaMac sender_mac{sim, sender, mac::CsmaConfig{}, rng.fork("smac")};
  mac::CsmaMac receiver_mac{sim, receiver, mac::CsmaConfig{},
                            rng.fork("rmac")};

  const auto bin = sim::Duration::from_minutes(20.0);
  stats::BinnedSeries prr_series{bin};
  stats::BinnedSeries lqi_series{bin};
  stats::BinnedSeries etx_series{bin};
  std::uint64_t unacked_total = 0;
  std::vector<std::uint64_t> unacked_by_bin;

  // The 4B estimator rides along, fed only by the ack bit (plus one
  // beacon to create the table entry).
  core::FourBitEstimator estimator{core::FourBitConfig{}, rng.fork("est")};
  {
    link::PacketPhyInfo seed_info{.white = true, .lqi = 110};
    const std::vector<std::uint8_t> beacon{0};
    (void)estimator.unwrap_beacon(receiver_id, beacon, seed_info);
  }

  receiver_mac.set_rx_handler([&](NodeId, std::uint8_t,
                                  std::span<const std::uint8_t>,
                                  const phy::RxInfo& info) {
    lqi_series.add(sim.now(), static_cast<double>(info.lqi));
  });

  const auto period = sim::Duration::from_seconds(2.0);
  const std::vector<std::uint8_t> payload(30, 0xAB);
  std::function<void()> send_one = [&] {
    sender_mac.send(receiver_id, payload, [&](const mac::TxResult& r) {
      prr_series.add(sim.now(), r.acked ? 1.0 : 0.0);
      if (!r.acked) ++unacked_total;
      estimator.on_unicast_result(receiver_id, r.acked);
      if (const auto e = estimator.etx(receiver_id)) {
        etx_series.add(sim.now(), *e);
      }
      const auto b =
          static_cast<std::size_t>(sim.now().us() / bin.us());
      if (b >= unacked_by_bin.size()) unacked_by_bin.resize(b + 1, 0);
      unacked_by_bin[b] = unacked_total;
    });
    sim.schedule_in(period, send_one);
  };
  sim.schedule_in(period, send_one);

  sim.run_for(sim::Duration::from_hours(hours));

  std::printf("%8s %8s %8s %10s %12s\n", "hour", "PRR", "meanLQI",
              "4B-ETX", "cum.unacked");
  for (std::size_t b = 0; b < prr_series.bins(); ++b) {
    std::printf("%8.2f %8.3f %8.1f %10.2f %12llu\n",
                prr_series.bin_start_seconds(b) / 3600.0,
                prr_series.mean(b), lqi_series.mean(b),
                etx_series.mean(b, 1.0),
                static_cast<unsigned long long>(
                    b < unacked_by_bin.size() ? unacked_by_bin[b] : 0));
  }

  std::printf(
      "\nshape check (paper Figure 3): PRR collapses during hours 4-6 while\n"
      "mean LQI of received packets stays flat; cumulative unacked climbs\n"
      "steeply in that window. The 4B ETX column shows the ack bit seeing\n"
      "what LQI cannot.\n");
  return 0;
}
