// Energy ablation — what the cost metric means for network lifetime.
//
// The paper motivates cost with "it directly relates to network
// lifetime". This bench makes that concrete: charge every transmission
// to a CC2420-class energy model and project the lifetime of the
// worst-drained node under each protocol. (Beyond-paper extension; the
// ordering should match the cost ordering of Figure 6.)
//
//   usage: energy_lifetime [minutes=30] [seeds=3]
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 30.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf(
      "=== Energy: transmission charge and projected lifetime ===\n"
      "Mirage-like testbed, 0 dBm, %.0f min x %d seeds\n"
      "(listen current dominates an always-on radio; the TX column is\n"
      "what the routing protocol actually controls)\n\n",
      minutes, seeds);
  std::printf("%-20s %10s %14s %14s %16s %18s\n", "protocol", "cost",
              "mean TX mAh", "worst node mAh", "lifetime (days)",
              "@1% duty (days)");

  for (const auto p :
       {runner::Profile::kFourBit, runner::Profile::kCtpT2,
        runner::Profile::kCtpUnconstrained,
        runner::Profile::kMultihopLqi}) {
    double cost = 0.0;
    double mean_tx = 0.0;
    double worst = 0.0;
    double lifetime = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 6000 + static_cast<std::uint64_t>(s) * 77;
      sim::Rng rng{seed};
      runner::ExperimentConfig cfg;
      cfg.testbed = topology::mirage(rng);
      cfg.profile = p;
      cfg.duration = sim::Duration::from_minutes(minutes);
      cfg.seed = seed;
      cfg.track_energy = true;
      const auto r = runner::run_experiment(cfg);
      cost += r.cost;
      mean_tx += r.mean_tx_mah;
      worst += r.worst_node_mah;
      lifetime += r.projected_lifetime_days;
    }
    // With a 1%-duty-cycled radio (low-power listening), the listening
    // term shrinks 100x and the protocol's transmissions dominate.
    const stats::EnergyConfig ecfg;
    const double run_days = minutes * 60.0 / 86400.0;
    const double tx_per_day = (mean_tx / seeds) / run_days;
    const double listen_per_day_1pct = ecfg.rx_current_ma * 24.0 * 0.01;
    const double lifetime_1pct =
        ecfg.battery_mah / (tx_per_day + listen_per_day_1pct);
    std::printf("%-20s %10.2f %14.4f %14.3f %16.1f %18.1f\n",
                runner::profile_name(p).data(), cost / seeds,
                mean_tx / seeds, worst / seeds, lifetime / seeds,
                lifetime_1pct);
  }

  std::printf(
      "\nshape check: protocols rank by TX charge exactly as they rank by\n"
      "cost; lower cost = longer projected lifetime.\n");
  return 0;
}
