// Ablation — link-table size sensitivity (extends Figure 2's point).
//
// The paper argues the 4B estimator DECOUPLES node in-degree from the
// link-table size (beacons carry no reverse state; the ack bit measures
// bidirectionality directly), while probe-based CTP is crippled by a
// small table (a parent can only serve neighbors that fit in ITS table).
//
// Sweep: table capacity in {5, 10, 20, unbounded} for stock CTP and 4B.
// Expected: CTP's cost falls sharply as the table grows; 4B is nearly
// flat across the sweep.
//
//   usage: ablation_table_size [minutes=30] [seeds=3]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Row {
  double cost = 0.0;
  double depth = 0.0;
  double delivery = 0.0;
};

Row run(runner::Profile profile, std::size_t table, double minutes,
        int seeds) {
  Row row;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig config;
    config.testbed = topology::mirage(rng);
    config.profile = profile;
    config.table_capacity = table;
    config.duration = sim::Duration::from_minutes(minutes);
    config.seed = seed;
    const auto r = runner::run_experiment(config);
    row.cost += r.cost;
    row.depth += r.mean_depth;
    row.delivery += r.delivery_ratio;
  }
  row.cost /= seeds;
  row.depth /= seeds;
  row.delivery /= seeds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 30.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf(
      "=== Ablation: link-table size (in-degree coupling) ===\n"
      "%.0f min x %d seeds per cell; capacity 0 = unbounded\n\n",
      minutes, seeds);
  std::printf("%-12s %10s %10s %10s %10s\n", "protocol", "capacity", "cost",
              "depth", "delivery");

  const std::vector<std::size_t> capacities = {5, 10, 20, 0};
  for (const auto p : {runner::Profile::kCtpT2, runner::Profile::kFourBit}) {
    for (const std::size_t cap : capacities) {
      const Row r = run(p, cap, minutes, seeds);
      if (cap == 0) {
        std::printf("%-12s %10s %10.2f %10.2f %9.1f%%\n",
                    runner::profile_name(p).data(), "unbounded", r.cost,
                    r.depth, r.delivery * 100.0);
      } else {
        std::printf("%-12s %10zu %10.2f %10.2f %9.1f%%\n",
                    runner::profile_name(p).data(), cap, r.cost, r.depth,
                    r.delivery * 100.0);
      }
    }
  }

  std::printf(
      "\nshape check: CTP-T2's cost should fall sharply with table size;\n"
      "4B should be nearly flat (in-degree decoupled from table size).\n");
  return 0;
}
