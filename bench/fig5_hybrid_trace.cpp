// Figure 5 — worked example of the hybrid estimator.
//
// The paper traces the 4B estimator over a scripted packet pattern with
// unicast window ku = 5 and beacon window kb = 2, showing the unicast ETX
// samples, the beacon PRR EWMA, and the combined hybrid ETX. This bench
// replays an equivalent script directly against the FourBitEstimator
// public API and prints each intermediate value.
//
// Paper values visible in Figure 5: unicast samples 1.0, 1.25, 5.0 and a
// failure-streak sample of 6; beacon EWMA 0.83 (and 0.67 later); ETX
// stream value 1.2 = 1/0.83; hybrid ETX points 3.1, 2.1, 1.7, 3.9.
#include <cstdio>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "link/estimator.hpp"
#include "sim/rng.hpp"

using namespace fourbit;

namespace {

/// Feeds one beacon with sequence number `seq` from node 1.
void beacon(core::FourBitEstimator& est, std::uint8_t seq) {
  link::PacketPhyInfo phy;
  phy.white = true;
  const std::vector<std::uint8_t> wire = [&] {
    // Estimator wire format: [seq][routing payload]; build it by hand so
    // the trace drives exactly one input.
    std::vector<std::uint8_t> v{seq};
    return v;
  }();
  (void)est.unwrap_beacon(NodeId{1}, wire, phy);
}

void print_state(const core::FourBitEstimator& est, const char* what) {
  const auto q = est.beacon_quality(NodeId{1});
  const auto e = est.etx(NodeId{1});
  std::printf("  %-28s beacon-EWMA=%-6s hybrid-ETX=%s\n", what,
              q ? [&] { static char b[32]; std::snprintf(b, 32, "%.2f", *q); return b; }() : "-",
              e ? [&] { static char b[32]; std::snprintf(b, 32, "%.2f", *e); return b; }() : "-");
}

}  // namespace

int main() {
  std::printf("=== Figure 5: hybrid data/beacon windowed-mean EWMA trace ===\n");
  std::printf("ku=5, kb=2, beacon-EWMA history=2/3, combine history=1/2\n\n");

  core::FourBitConfig cfg;
  cfg.unicast_window = 5;
  cfg.beacon_window = 2;
  core::FourBitEstimator est{cfg, sim::Rng{1}};

  // --- Beacon bootstrap: two perfect beacons -> PRR window 2/2 = 1.0 ---
  beacon(est, 0);
  beacon(est, 1);
  print_state(est, "2 beacons (2/2 -> PRR 1.0)");

  // --- Unicast window #1: 5/5 acked -> sample 1.0 -----------------------
  for (int i = 0; i < 5; ++i) est.on_unicast_result(NodeId{1}, true);
  print_state(est, "5/5 acked (sample 1.00)");

  // --- Beacon window: 1 of 2 received (seq jumps by 2) -> PRR 0.5 ------
  beacon(est, 3);
  print_state(est, "1/2 beacons (EWMA -> 0.83)");

  // --- Unicast window #2: 4/5 acked -> sample 1.25 ----------------------
  for (int i = 0; i < 4; ++i) est.on_unicast_result(NodeId{1}, true);
  est.on_unicast_result(NodeId{1}, false);
  print_state(est, "4/5 acked (sample 1.25)");

  // --- Unicast window #3: 1/5 acked -> sample 5.0 -----------------------
  est.on_unicast_result(NodeId{1}, true);
  for (int i = 0; i < 4; ++i) est.on_unicast_result(NodeId{1}, false);
  print_state(est, "1/5 acked (sample 5.00)");

  // --- Beacon window: 1/2 again -> EWMA decays toward 0.5 ---------------
  beacon(est, 5);
  print_state(est, "1/2 beacons (ETX sample 1/EWMA)");

  // --- Unicast window #4: 4/5 acked -> sample 1.25 ----------------------
  for (int i = 0; i < 4; ++i) est.on_unicast_result(NodeId{1}, true);
  est.on_unicast_result(NodeId{1}, false);
  print_state(est, "4/5 acked (sample 1.25)");

  // --- Unicast window #5: 0/5 acked, streak reaches 6 -> sample 6 -------
  // The previous window ended with 1 failure; five more make a streak of
  // 6 failed deliveries since the last success.
  for (int i = 0; i < 5; ++i) est.on_unicast_result(NodeId{1}, false);
  print_state(est, "0/5 acked (streak sample 6)");

  std::printf(
      "\npaper reference points: beacon EWMA 0.83; ETX sample 1.2; hybrid\n"
      "ETX ~3.1 after the 5.0 sample, ~2.1 then ~1.7 recovering, ~3.9\n"
      "after the failure streak of 6.\n");
  return 0;
}
