// Extension — collection over duty-cycled radios (low-power listening).
//
// The paper's testbeds ran always-on radios; real deployments duty-cycle
// them with LPL, which changes the economics: idle listening shrinks
// ~50x, but every logical transmission becomes a train of copies lasting
// up to a wake interval. This bench sweeps the wake interval on a small
// Mirage-like network under 4B and reports delivery, logical cost,
// radio copies actually transmitted, and the projected lifetime.
//
//   usage: lpl_duty_cycle [minutes=20] [seeds=2]
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 20.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf(
      "=== Extension: 4B collection over low-power listening ===\n"
      "24-node Mirage-like subgrid, 1 pkt/20 s/node, %.0f min x %d seeds\n\n",
      minutes, seeds);
  std::printf("%-16s %10s %10s %12s %16s %18s\n", "wake interval", "cost",
              "delivery", "radio tx", "worst node mAh", "@duty lifetime d");

  for (const std::int64_t wake_ms : {0LL, 128LL, 512LL, 1024LL}) {
    double cost = 0.0;
    double delivery = 0.0;
    double radio_tx = 0.0;
    double worst = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(s) * 77;
      sim::Rng rng{seed};
      runner::ExperimentConfig cfg;
      auto tb = topology::mirage(rng);
      tb.topology.nodes.resize(24);  // keep LPL trains tractable
      cfg.testbed = std::move(tb);
      cfg.profile = runner::Profile::kFourBit;
      cfg.duration = sim::Duration::from_minutes(minutes);
      cfg.traffic.period = sim::Duration::from_seconds(20.0);
      cfg.lpl_wake_interval = sim::Duration::from_ms(wake_ms);
      cfg.seed = seed;
      cfg.track_energy = true;
      const auto r = runner::run_experiment(cfg);
      cost += r.cost;
      delivery += r.delivery_ratio;
      radio_tx += static_cast<double>(r.radio_frames);
      worst += r.worst_node_mah;
    }
    cost /= seeds;
    delivery /= seeds;
    radio_tx /= seeds;
    worst /= seeds;

    // Lifetime at the actual duty cycle: listening scaled by
    // sample/interval (always-on when wake == 0).
    const stats::EnergyConfig ecfg;
    const double duty =
        wake_ms == 0 ? 1.0
                     : mac::LplConfig{}.sample_duration.seconds() /
                           (static_cast<double>(wake_ms) / 1000.0);
    const double run_days = minutes * 60.0 / 86400.0;
    // worst includes full listening; separate terms:
    const double listen_run = ecfg.rx_current_ma * minutes / 60.0;
    const double tx_run = std::max(worst - listen_run, 0.0);
    const double per_day = (tx_run + listen_run * duty) / run_days;
    const double lifetime = ecfg.battery_mah / std::max(per_day, 1e-9);

    char label[32];
    if (wake_ms == 0) {
      std::snprintf(label, sizeof label, "always on");
    } else {
      std::snprintf(label, sizeof label, "%lld ms", (long long)wake_ms);
    }
    std::printf("%-16s %10.2f %9.1f%% %12.0f %16.3f %18.1f\n", label, cost,
                delivery * 100.0, radio_tx, worst, lifetime);
  }

  std::printf(
      "\nshape check: delivery stays high at every duty cycle; logical\n"
      "cost is stable; projected lifetime rises steeply as the wake\n"
      "interval grows, until transmission trains start to dominate.\n");
  return 0;
}
