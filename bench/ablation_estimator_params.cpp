// Ablation — the 4B estimator's own design choices.
//
// Sweeps, one at a time, the tunables of the hybrid estimator on the
// Mirage testbed:
//   * unicast window ku (paper: 5)
//   * beacon window kb (paper: 2)
//   * the outer (combining) EWMA history weight (Fig. 5 implies 0.5)
//   * the white-bit source (LQI threshold / SNR threshold / never —
//     "in the worst case ... the white bit can never be set")
//   * the pin bit on/off
//
// Expected shapes: small ku reacts fast but jitters (more parent churn),
// huge ku reacts too slowly under bursts; disabling the white bit
// degrades table admission; disabling the pin bit lets churn evict the
// route in use.
//
//   usage: ablation_estimator_params [minutes=25] [seeds=3]
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Row {
  double cost = 0.0;
  double delivery = 0.0;
  double churn = 0.0;  // parent changes per node
};

Row run(double minutes, int seeds,
        const std::function<void(runner::ExperimentConfig&)>& customize) {
  Row row;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig cfg;
    cfg.testbed = topology::mirage(rng);
    cfg.profile = runner::Profile::kFourBit;
    cfg.duration = sim::Duration::from_minutes(minutes);
    cfg.seed = seed;
    customize(cfg);
    const auto r = runner::run_experiment(cfg);
    row.cost += r.cost;
    row.delivery += r.delivery_ratio;
    row.churn += static_cast<double>(r.parent_changes) /
                 static_cast<double>(cfg.testbed.topology.size());
  }
  row.cost /= seeds;
  row.delivery /= seeds;
  row.churn /= seeds;
  return row;
}

void print_row(const char* label, const Row& r) {
  std::printf("  %-24s cost=%-6.2f delivery=%5.1f%%  churn=%.1f/node\n",
              label, r.cost, r.delivery * 100.0, r.churn);
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 25.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("=== Ablation: 4B estimator parameters (Mirage, %.0f min x "
              "%d seeds) ===\n\n", minutes, seeds);

  std::printf("unicast window ku (paper: 5):\n");
  for (const std::size_t ku : {2, 5, 10, 20}) {
    char label[32];
    std::snprintf(label, sizeof label, "ku = %zu", ku);
    print_row(label, run(minutes, seeds, [&](runner::ExperimentConfig& c) {
                c.four_bit_override = core::FourBitConfig{};
                c.four_bit_override->unicast_window = ku;
              }));
  }

  std::printf("\nbeacon window kb (paper: 2):\n");
  for (const std::size_t kb : {1, 2, 5, 10}) {
    char label[32];
    std::snprintf(label, sizeof label, "kb = %zu", kb);
    print_row(label, run(minutes, seeds, [&](runner::ExperimentConfig& c) {
                c.four_bit_override = core::FourBitConfig{};
                c.four_bit_override->beacon_window = kb;
              }));
  }

  std::printf("\ncombining EWMA history weight (Fig. 5 implies 0.5):\n");
  for (const double alpha : {0.1, 0.5, 0.9}) {
    char label[32];
    std::snprintf(label, sizeof label, "history = %.1f", alpha);
    print_row(label, run(minutes, seeds, [&](runner::ExperimentConfig& c) {
                c.four_bit_override = core::FourBitConfig{};
                c.four_bit_override->etx_history = alpha;
              }));
  }

  std::printf("\nwhite-bit source:\n");
  using Source = phy::PhyConfig::WhiteBitSource;
  const struct {
    const char* name;
    Source source;
  } sources[] = {{"LQI threshold", Source::kLqi},
                 {"SNR threshold", Source::kSnr},
                 {"never set", Source::kNever}};
  for (const auto& s : sources) {
    print_row(s.name, run(minutes, seeds, [&](runner::ExperimentConfig& c) {
                c.testbed.environment.phy.white_bit_source = s.source;
              }));
  }

  std::printf("\npin bit (table=4 maximizes admission churn pressure):\n");
  for (const bool pin : {true, false}) {
    char label[32];
    std::snprintf(label, sizeof label, "pin %s", pin ? "on" : "off");
    print_row(label, run(minutes, seeds, [&](runner::ExperimentConfig& c) {
                c.table_capacity = 4;
                net::CollectionConfig cc;
                cc.pin_parent = pin;
                c.collection_override = cc;
              }));
  }
  return 0;
}
