// Ablation — the 4B estimator's own design choices.
//
// Sweeps, one at a time, the tunables of the hybrid estimator on the
// Mirage testbed:
//   * unicast window ku (paper: 5)
//   * beacon window kb (paper: 2)
//   * the outer (combining) EWMA history weight (Fig. 5 implies 0.5)
//   * the white-bit source (LQI threshold / SNR threshold / never —
//     "in the worst case ... the white bit can never be set")
//   * the pin bit on/off
//
// Expected shapes: small ku reacts fast but jitters (more parent churn),
// huge ku reacts too slowly under bursts; disabling the white bit
// degrades table admission; disabling the pin bit lets churn evict the
// route in use.
//
// Every (row, seed) trial across all sweeps runs in one Campaign pool.
//
//   usage: ablation_estimator_params [minutes=25] [seeds=3] [--threads N]
//          [--journal FILE] [--max-trial-ms N] [--retries N]
//          [--status-json FILE] [--status-interval-ms N] [--profile-phases]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Row {
  std::string section;  // printed once, before the section's first row
  std::string label;
  std::function<void(runner::ExperimentConfig&)> customize;
};

runner::ExperimentConfig make_trial(const Row& row, double minutes, int s) {
  const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(s) * 77;
  sim::Rng rng{seed};
  runner::ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(minutes);
  cfg.seed = seed;
  row.customize(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runner::consume_campaign_cli(argc, argv);
  const double minutes = argc > 1 ? std::atof(argv[1]) : 25.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("=== Ablation: 4B estimator parameters (Mirage, %.0f min x "
              "%d seeds) ===\n\n", minutes, seeds);

  std::vector<Row> rows;
  for (const std::size_t ku : {2, 5, 10, 20}) {
    rows.push_back({"unicast window ku (paper: 5):", "ku = " + std::to_string(ku),
                    [ku](runner::ExperimentConfig& c) {
                      c.four_bit_override = core::FourBitConfig{};
                      c.four_bit_override->unicast_window = ku;
                    }});
  }
  for (const std::size_t kb : {1, 2, 5, 10}) {
    rows.push_back({"beacon window kb (paper: 2):", "kb = " + std::to_string(kb),
                    [kb](runner::ExperimentConfig& c) {
                      c.four_bit_override = core::FourBitConfig{};
                      c.four_bit_override->beacon_window = kb;
                    }});
  }
  for (const double alpha : {0.1, 0.5, 0.9}) {
    char label[32];
    std::snprintf(label, sizeof label, "history = %.1f", alpha);
    rows.push_back({"combining EWMA history weight (Fig. 5 implies 0.5):",
                    label, [alpha](runner::ExperimentConfig& c) {
                      c.four_bit_override = core::FourBitConfig{};
                      c.four_bit_override->etx_history = alpha;
                    }});
  }
  using Source = phy::PhyConfig::WhiteBitSource;
  const struct {
    const char* name;
    Source source;
  } sources[] = {{"LQI threshold", Source::kLqi},
                 {"SNR threshold", Source::kSnr},
                 {"never set", Source::kNever}};
  for (const auto& s : sources) {
    rows.push_back({"white-bit source:", s.name,
                    [source = s.source](runner::ExperimentConfig& c) {
                      c.testbed.environment.phy.white_bit_source = source;
                    }});
  }
  for (const bool pin : {true, false}) {
    rows.push_back({"pin bit (table=4 maximizes admission churn pressure):",
                    pin ? "pin on" : "pin off",
                    [pin](runner::ExperimentConfig& c) {
                      c.table_capacity = 4;
                      net::CollectionConfig cc;
                      cc.pin_parent = pin;
                      c.collection_override = cc;
                    }});
  }

  // One flat campaign, laid out [row][seed].
  std::vector<runner::ExperimentConfig> trials;
  trials.reserve(rows.size() * static_cast<std::size_t>(seeds));
  for (const auto& row : rows) {
    for (int s = 0; s < seeds; ++s) trials.push_back(make_trial(row, minutes, s));
  }
  const auto report =
      runner::run_campaign(trials, cli, runner::stderr_progress());
  if (const auto note = runner::describe(report); !note.empty()) {
    std::fprintf(stderr, "%s", note.c_str());
  }
  const auto& results = report.results;

  std::string current_section;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].section != current_section) {
      current_section = rows[i].section;
      std::printf("%s%s\n", i == 0 ? "" : "\n", current_section.c_str());
    }
    const auto begin =
        results.begin() + static_cast<std::ptrdiff_t>(i * seeds);
    const auto summary = runner::summarize(
        {begin, begin + static_cast<std::ptrdiff_t>(seeds)});
    const double nodes = static_cast<double>(
        trials[i * static_cast<std::size_t>(seeds)].testbed.topology.size());
    std::printf("  %-24s cost=%-6.2f delivery=%5.1f%%  churn=%.1f/node\n",
                rows[i].label.c_str(), summary.cost.mean,
                summary.delivery_ratio.mean * 100.0,
                summary.parent_changes.mean / nodes);
  }

  if (cli.json) {
    std::printf("%s\n", runner::describe_json(report).c_str());
    for (const auto& failure : report.failures) {
      std::printf("%s\n", runner::describe_json(failure).c_str());
    }
  }
  return 0;
}
