// Section 4 headline — the Tutornet comparison.
//
// Paper: on the USC Tutornet testbed (94 TelosB nodes, a harsher RF
// environment than Mirage), 4B reduces packet delivery cost by 44% and
// average depth by 9.7% vs. MultiHopLQI, while delivering 99% of packets
// vs. MultiHopLQI's 85%.
//
//   usage: tutornet_headline [minutes=60] [seeds=5]
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

struct Row {
  double cost = 0.0;
  double depth = 0.0;
  double delivery = 0.0;
};

Row run(runner::Profile profile, double minutes, int seeds) {
  Row row;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 4000 + static_cast<std::uint64_t>(s) * 77;
    sim::Rng rng{seed};
    runner::ExperimentConfig config;
    config.testbed = topology::tutornet(rng);
    config.profile = profile;
    config.duration = sim::Duration::from_minutes(minutes);
    config.seed = seed;
    const auto r = runner::run_experiment(config);
    row.cost += r.cost;
    row.depth += r.mean_depth;
    row.delivery += r.delivery_ratio;
  }
  row.cost /= seeds;
  row.depth /= seeds;
  row.delivery /= seeds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 60.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "=== Tutornet headline (94 nodes, harsh channel) ===\n"
      "paper: 4B cost -44%%, depth -9.7%% vs MultiHopLQI; delivery 99%% vs "
      "85%%\n%.0f min x %d seeds\n\n",
      minutes, seeds);

  const Row fourb = run(runner::Profile::kFourBit, minutes, seeds);
  const Row mhlqi = run(runner::Profile::kMultihopLqi, minutes, seeds);

  std::printf("%-14s %10s %10s %10s\n", "protocol", "cost", "depth",
              "delivery");
  std::printf("%-14s %10.2f %10.2f %9.1f%%\n", "4B", fourb.cost, fourb.depth,
              fourb.delivery * 100.0);
  std::printf("%-14s %10.2f %10.2f %9.1f%%\n", "MultiHopLQI", mhlqi.cost,
              mhlqi.depth, mhlqi.delivery * 100.0);

  std::printf("\n  4B cost vs MultiHopLQI : %+.1f%%  (paper -44%%)\n",
              (fourb.cost / mhlqi.cost - 1.0) * 100.0);
  std::printf("  4B depth vs MultiHopLQI: %+.1f%%  (paper -9.7%%)\n",
              (fourb.depth / mhlqi.depth - 1.0) * 100.0);
  return 0;
}
