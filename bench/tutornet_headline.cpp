// Section 4 headline — the Tutornet comparison.
//
// Paper: on the USC Tutornet testbed (94 TelosB nodes, a harsher RF
// environment than Mirage), 4B reduces packet delivery cost by 44% and
// average depth by 9.7% vs. MultiHopLQI, while delivering 99% of packets
// vs. MultiHopLQI's 85%.
//
// Both protocols' seed sweeps run as one Campaign; per-trial seeds are
// derived from the trial definition alone, so the printed aggregates are
// bit-identical for any --threads value.
//
//   usage: tutornet_headline [minutes=60] [seeds=5] [--threads N]
//          [--journal FILE] [--max-trial-ms N] [--retries N]
//          [--status-json FILE] [--status-interval-ms N] [--profile-phases]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

runner::ExperimentConfig make_trial(runner::Profile profile, double minutes,
                                    int s) {
  const std::uint64_t seed = 4000 + static_cast<std::uint64_t>(s) * 77;
  sim::Rng rng{seed};
  runner::ExperimentConfig config;
  config.testbed = topology::tutornet(rng);
  config.profile = profile;
  config.duration = sim::Duration::from_minutes(minutes);
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runner::consume_campaign_cli(argc, argv);
  const double minutes = argc > 1 ? std::atof(argv[1]) : 60.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "=== Tutornet headline (94 nodes, harsh channel) ===\n"
      "paper: 4B cost -44%%, depth -9.7%% vs MultiHopLQI; delivery 99%% vs "
      "85%%\n%.0f min x %d seeds\n\n",
      minutes, seeds);

  // One campaign over both protocols, laid out [profile][seed].
  std::vector<runner::ExperimentConfig> trials;
  for (const auto p :
       {runner::Profile::kFourBit, runner::Profile::kMultihopLqi}) {
    for (int s = 0; s < seeds; ++s) trials.push_back(make_trial(p, minutes, s));
  }
  const auto report =
      runner::run_campaign(trials, cli, runner::stderr_progress());
  if (const auto note = runner::describe(report); !note.empty()) {
    std::fprintf(stderr, "%s", note.c_str());
  }
  const auto& results = report.results;

  const auto n = static_cast<std::ptrdiff_t>(seeds);
  const auto fourb = runner::summarize({results.begin(), results.begin() + n});
  const auto mhlqi = runner::summarize({results.begin() + n, results.end()});

  std::printf("%-14s %10s %10s %10s %12s\n", "protocol", "cost", "depth",
              "delivery", "cost 95%ci");
  std::printf("%-14s %10.2f %10.2f %9.1f%% %11.2f\n", "4B", fourb.cost.mean,
              fourb.mean_depth.mean, fourb.delivery_ratio.mean * 100.0,
              fourb.cost.ci95_half);
  std::printf("%-14s %10.2f %10.2f %9.1f%% %11.2f\n", "MultiHopLQI",
              mhlqi.cost.mean, mhlqi.mean_depth.mean,
              mhlqi.delivery_ratio.mean * 100.0, mhlqi.cost.ci95_half);

  std::printf("\n  4B cost vs MultiHopLQI : %+.1f%%  (paper -44%%)\n",
              (fourb.cost.mean / mhlqi.cost.mean - 1.0) * 100.0);
  std::printf("  4B depth vs MultiHopLQI: %+.1f%%  (paper -9.7%%)\n",
              (fourb.mean_depth.mean / mhlqi.mean_depth.mean - 1.0) * 100.0);

  if (cli.json) {
    std::printf("%s\n", runner::describe_json(report).c_str());
    for (const auto& failure : report.failures) {
      std::printf("%s\n", runner::describe_json(failure).c_str());
    }
  }
  return 0;
}
