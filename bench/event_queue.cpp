// Event-queue throughput benchmark: the calendar queue (SimConfig
// default) against the binary-heap reference, on the two access
// patterns that dominate a trial's kernel time.
//
//   hold   — classic hold model: pop the minimum, schedule a replacement
//            a random offset ahead, queue depth constant. This is the
//            steady-state shape of a running simulation (every radio
//            tick reschedules itself; every frame schedules its own
//            completion). Swept across depths: the heap pays O(log n)
//            per op, the calendar should stay flat.
//   churn  — cancel-heavy timer traffic: a ring of live timers where
//            each op cancels one and schedules a replacement (MAC
//            backoff/ack timers do exactly this). Exercises direct-slot
//            cancellation against the heap's remove-and-sift.
//
// Output is BENCH_event_queue.json. Wall-clock ops/s are recorded for
// context, but the gated metric is the calendar/heap throughput RATIO
// per cell — ratios transfer across machines, absolute rates do not.
// With --check BASELINE the run exits nonzero if any measured ratio
// falls below 80% of its checked-in baseline value: a calendar-queue
// performance regression (e.g. resize thrash) shows up here long before
// it is visible in end-to-end campaign time.
//
//   usage: event_queue [--depths 1024,16384,65536] [--ops N]
//                      [--out BENCH_event_queue.json] [--check BASELINE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

using namespace fourbit;

namespace {

// Mean inter-event gap of the hold workload, chosen so the scheduling
// horizon scales with depth (a fixed horizon would thin the calendar's
// buckets at small depths and overfill them at large ones).
constexpr std::int64_t kMeanGapUs = 8;

struct CellResult {
  std::string pattern;
  std::size_t depth = 0;
  double heap_ops_s = 0.0;
  double calendar_ops_s = 0.0;
  std::uint64_t calendar_resizes = 0;

  [[nodiscard]] double ratio() const {
    return heap_ops_s > 0.0 ? calendar_ops_s / heap_ops_s : 0.0;
  }
};

/// Hold model at constant `depth`: `ops` iterations of pop-then-schedule
/// after an untimed fill. Returns ops/s.
double run_hold(sim::EventQueue::Impl impl, std::size_t depth,
                std::size_t ops, std::uint64_t* resizes) {
  sim::EventQueue q{impl};
  sim::Rng rng{99};
  const auto horizon =
      static_cast<std::uint64_t>(depth) * 2 * kMeanGapUs;
  std::int64_t now = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    q.schedule(sim::Time::from_us(
                   now + 1 + static_cast<std::int64_t>(rng.uniform_int(
                                 static_cast<std::uint32_t>(horizon)))),
               [] {});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    auto popped = q.pop();
    now = popped.time.us();
    q.schedule(sim::Time::from_us(
                   now + 1 + static_cast<std::int64_t>(rng.uniform_int(
                                 static_cast<std::uint32_t>(horizon)))),
               [] {});
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (resizes != nullptr) *resizes = q.resizes();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
}

/// Cancel churn: a ring of `depth` live timers; every op cancels the
/// oldest handle and schedules a replacement. Returns ops/s.
double run_churn(sim::EventQueue::Impl impl, std::size_t depth,
                 std::size_t ops, std::uint64_t* resizes) {
  sim::EventQueue q{impl};
  sim::Rng rng{99};
  const auto horizon =
      static_cast<std::uint64_t>(depth) * 2 * kMeanGapUs;
  const std::int64_t now = 0;
  std::vector<sim::EventId> ids(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    ids[i] = q.schedule(
        sim::Time::from_us(
            now + 1 + static_cast<std::int64_t>(rng.uniform_int(
                          static_cast<std::uint32_t>(horizon)))),
        [] {});
  }
  std::size_t slot = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    q.cancel(ids[slot]);
    ids[slot] = q.schedule(
        sim::Time::from_us(
            now + 1 + static_cast<std::int64_t>(rng.uniform_int(
                          static_cast<std::uint32_t>(horizon)))),
        [] {});
    slot = (slot + 1) % depth;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (resizes != nullptr) *resizes = q.resizes();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
}

void write_json(const char* path, const std::vector<CellResult>& cells) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"event_queue\",\n");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    // Pattern-specific ratio keys keep the line shape greppable by the
    // same {"depth": N, "<key>": V} scan channel_scaling --check uses.
    std::fprintf(f,
                 "    {\"depth\": %zu, \"%s_ratio\": %.3f, "
                 "\"pattern\": \"%s\", \"heap_ops_per_s\": %.0f, "
                 "\"calendar_ops_per_s\": %.0f, "
                 "\"calendar_resizes\": %llu}%s\n",
                 c.depth, c.pattern.c_str(), c.ratio(), c.pattern.c_str(),
                 c.heap_ops_s, c.calendar_ops_s,
                 static_cast<unsigned long long>(c.calendar_resizes),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// {depth, value} pairs for lines carrying `key`, in the exact line
/// shape write_json emits (same scanner contract as channel_scaling).
std::vector<std::pair<std::size_t, double>> read_metric(const char* path,
                                                        const char* key) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    std::exit(1);
  }
  char pattern[128];
  std::snprintf(pattern, sizeof pattern, "\"%s\"", key);
  char format[128];
  std::snprintf(format, sizeof format, " {\"depth\": %%zu, \"%s\": %%lf",
                key);
  std::vector<std::pair<std::size_t, double>> out;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strstr(line, pattern) == nullptr) continue;
    std::size_t depth = 0;
    double value = 0.0;
    if (std::sscanf(line, format, &depth, &value) == 2) {
      out.emplace_back(depth, value);
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> depths{1024, 16384, 65536};
  std::size_t ops = 2'000'000;
  const char* out_path = "BENCH_event_queue.json";
  const char* baseline_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--depths") {
      depths.clear();
      std::string list = next();
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        depths.push_back(static_cast<std::size_t>(std::atoll(tok)));
      }
    } else if (arg == "--ops") {
      ops = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      baseline_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: event_queue [--depths 1024,16384,65536] "
                   "[--ops N] [--out FILE] [--check BASELINE]\n");
      return 2;
    }
  }

  std::printf("=== Event queue (%zu ops per cell) ===\n\n", ops);
  std::printf("%7s %7s %14s %14s %9s %8s\n", "pattern", "depth", "heap ops/s",
              "cal ops/s", "ratio", "resizes");

  std::vector<CellResult> cells;
  for (const std::size_t depth : depths) {
    CellResult hold;
    hold.pattern = "hold";
    hold.depth = depth;
    hold.heap_ops_s =
        run_hold(sim::EventQueue::Impl::kHeap, depth, ops, nullptr);
    hold.calendar_ops_s = run_hold(sim::EventQueue::Impl::kCalendar, depth,
                                   ops, &hold.calendar_resizes);
    cells.push_back(hold);

    CellResult churn;
    churn.pattern = "churn";
    churn.depth = depth;
    churn.heap_ops_s =
        run_churn(sim::EventQueue::Impl::kHeap, depth, ops, nullptr);
    churn.calendar_ops_s = run_churn(sim::EventQueue::Impl::kCalendar, depth,
                                     ops, &churn.calendar_resizes);
    cells.push_back(churn);

    for (const CellResult* c : {&hold, &churn}) {
      std::printf("%7s %7zu %14.0f %14.0f %8.2fx %8llu\n",
                  c->pattern.c_str(), c->depth, c->heap_ops_s,
                  c->calendar_ops_s, c->ratio(),
                  static_cast<unsigned long long>(c->calendar_resizes));
    }
  }

  write_json(out_path, cells);
  std::printf("\nwrote %s\n", out_path);

  if (baseline_path != nullptr) {
    bool ok = true;
    for (const char* key : {"hold_ratio", "churn_ratio"}) {
      const auto baseline = read_metric(baseline_path, key);
      const auto measured = read_metric(out_path, key);
      for (const auto& [depth, base] : baseline) {
        for (const auto& [mdepth, got] : measured) {
          if (mdepth != depth) continue;
          const double floor = 0.8 * base;
          const bool pass = got >= floor;
          std::printf("check depth=%zu: %s %.2fx vs baseline %.2fx "
                      "(floor %.2fx) %s\n",
                      depth, key, got, base, floor,
                      pass ? "OK" : "REGRESSED");
          ok = ok && pass;
        }
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "FAIL: calendar/heap throughput ratio regressed "
                   "against %s\n",
                   baseline_path);
      return 1;
    }
  }
  return 0;
}
